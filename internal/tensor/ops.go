package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise as a new tensor.
func Add(a, b *Tensor) *Tensor {
	mustSameShape("Add", a, b)
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns a - b elementwise as a new tensor.
func Sub(a, b *Tensor) *Tensor {
	mustSameShape("Sub", a, b)
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b as a new tensor.
func Mul(a, b *Tensor) *Tensor {
	mustSameShape("Mul", a, b)
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = v * b.data[i]
	}
	return out
}

// Scale returns a * s as a new tensor.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = v * s
	}
	return out
}

// AddInPlace computes t += o elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	mustSameShape("AddInPlace", t, o)
	for i, v := range o.data {
		t.data[i] += v
	}
}

// SubInPlace computes t -= o elementwise.
func (t *Tensor) SubInPlace(o *Tensor) {
	mustSameShape("SubInPlace", t, o)
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// MulInPlace computes t *= o elementwise.
func (t *Tensor) MulInPlace(o *Tensor) {
	mustSameShape("MulInPlace", t, o)
	for i, v := range o.data {
		t.data[i] *= v
	}
}

// ScaleInPlace computes t *= s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AxpyInPlace computes t += alpha * x (BLAS axpy).
func (t *Tensor) AxpyInPlace(alpha float32, x *Tensor) {
	mustSameShape("AxpyInPlace", t, x)
	for i, v := range x.data {
		t.data[i] += alpha * v
	}
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// ArgMax returns the index of the largest element of a flat view of t.
// Ties break toward the lower index. Panics on empty tensors.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bestV := 0, t.data[0]
	for i, v := range t.data[1:] {
		if v > bestV {
			best, bestV = i+1, v
		}
	}
	return best
}

// ArgMaxRows returns, for a 2-D tensor, the argmax of each row.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows on non-matrix shape %v", t.shape))
	}
	out := make([]int, t.shape[0])
	for i := range out {
		row := t.Row(i)
		best, bestV := 0, row[0]
		for j, v := range row[1:] {
			if v > bestV {
				best, bestV = j+1, v
			}
		}
		out[i] = best
	}
	return out
}

// Softmax computes a numerically stable softmax over the last dimension of a
// 2-D tensor [rows, classes] and returns a new tensor of the same shape.
func Softmax(logits *Tensor) *Tensor {
	if len(logits.shape) != 2 {
		panic(fmt.Sprintf("tensor: Softmax expects a matrix, got shape %v", logits.shape))
	}
	out := New(logits.shape...)
	rows, cols := logits.shape[0], logits.shape[1]
	for r := 0; r < rows; r++ {
		in := logits.data[r*cols : (r+1)*cols]
		dst := out.data[r*cols : (r+1)*cols]
		softmaxRow(in, dst)
	}
	return out
}

// softmaxRow writes softmax(in) into dst; len(in) == len(dst) > 0.
func softmaxRow(in, dst []float32) {
	maxV := in[0]
	for _, v := range in[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range in {
		e := math.Exp(float64(v - maxV))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1.0 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxRow computes softmax over a single logit vector.
func SoftmaxRow(logits []float32) []float32 {
	out := make([]float32, len(logits))
	if len(logits) == 0 {
		return out
	}
	softmaxRow(logits, out)
	return out
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Zero probabilities contribute zero.
func Entropy(p []float32) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= float64(v) * math.Log(float64(v))
		}
	}
	return h
}

// MaxVal returns the maximum element of a slice. Panics on empty input.
func MaxVal(p []float32) float32 {
	if len(p) == 0 {
		panic("tensor: MaxVal of empty slice")
	}
	m := p[0]
	for _, v := range p[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Concat concatenates tensors along dimension 0. All inputs must share the
// trailing dimensions.
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of no tensors")
	}
	rest := ts[0].shape[1:]
	total := 0
	for _, t := range ts {
		if len(t.shape) == 0 {
			panic("tensor: Concat of scalar tensor")
		}
		if len(t.shape[1:]) != len(rest) {
			panic(fmt.Sprintf("tensor: Concat rank mismatch %v vs %v", t.shape, ts[0].shape))
		}
		for i := range rest {
			if t.shape[i+1] != rest[i] {
				panic(fmt.Sprintf("tensor: Concat trailing-shape mismatch %v vs %v", t.shape, ts[0].shape))
			}
		}
		total += t.shape[0]
	}
	outShape := append([]int{total}, rest...)
	out := New(outShape...)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}

// ConcatChannels concatenates NCHW tensors along the channel dimension.
func ConcatChannels(a, b *Tensor) *Tensor {
	if len(a.shape) != 4 || len(b.shape) != 4 {
		panic(fmt.Sprintf("tensor: ConcatChannels expects NCHW, got %v and %v", a.shape, b.shape))
	}
	n, ca, h, w := a.shape[0], a.shape[1], a.shape[2], a.shape[3]
	if b.shape[0] != n || b.shape[2] != h || b.shape[3] != w {
		panic(fmt.Sprintf("tensor: ConcatChannels shape mismatch %v vs %v", a.shape, b.shape))
	}
	cb := b.shape[1]
	out := New(n, ca+cb, h, w)
	plane := h * w
	for i := 0; i < n; i++ {
		copy(out.data[i*(ca+cb)*plane:], a.data[i*ca*plane:(i+1)*ca*plane])
		copy(out.data[(i*(ca+cb)+ca)*plane:], b.data[i*cb*plane:(i+1)*cb*plane])
	}
	return out
}

// SplitChannels is the inverse of ConcatChannels: it splits an NCHW tensor
// into the first ca channels and the remaining channels.
func SplitChannels(t *Tensor, ca int) (*Tensor, *Tensor) {
	if len(t.shape) != 4 {
		panic(fmt.Sprintf("tensor: SplitChannels expects NCHW, got %v", t.shape))
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	if ca <= 0 || ca >= c {
		panic(fmt.Sprintf("tensor: SplitChannels split %d out of range for %d channels", ca, c))
	}
	cb := c - ca
	a, b := New(n, ca, h, w), New(n, cb, h, w)
	plane := h * w
	for i := 0; i < n; i++ {
		copy(a.data[i*ca*plane:], t.data[i*c*plane:i*c*plane+ca*plane])
		copy(b.data[i*cb*plane:], t.data[i*c*plane+ca*plane:(i+1)*c*plane])
	}
	return a, b
}

func mustSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
