package tensor

import (
	"math"
	"math/rand"
)

// Randn returns a tensor with elements drawn i.i.d. from N(0, std²) using
// the provided RNG, keeping all stochastic behaviour seedable.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// RandUniform returns a tensor with elements drawn i.i.d. from U[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// KaimingConv initialises a convolution weight tensor [outC, inC, kh, kw]
// with He/Kaiming-normal scaling, the standard initialisation for
// ReLU networks (std = sqrt(2 / fan_in)).
func KaimingConv(rng *rand.Rand, outC, inC, kh, kw int) *Tensor {
	fanIn := inC * kh * kw
	std := math.Sqrt(2.0 / float64(fanIn))
	return Randn(rng, std, outC, inC, kh, kw)
}

// KaimingLinear initialises a fully-connected weight tensor [outF, inF]
// with He/Kaiming-normal scaling.
func KaimingLinear(rng *rand.Rand, outF, inF int) *Tensor {
	std := math.Sqrt(2.0 / float64(inF))
	return Randn(rng, std, outF, inF)
}
