package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refGemm is the ascending-k float32 reference every kernel path must match
// bitwise: the blocked kernel, the small-product fallbacks and any worker
// split all accumulate over k in the same order, so exact equality — not a
// tolerance — is the contract (the cloud micro-batching path depends on it
// for batched-vs-unbatched determinism).
func refGemm(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

// gemmShapes exercises ragged micro-tiles (m, n not multiples of the 4x4
// register tile), k spans crossing the 64-deep packed block, and n spans
// crossing the 256-wide B block, on both sides of the small-product cutoff.
var gemmShapes = [][3]int{
	{1, 1, 1}, {3, 5, 2}, {4, 4, 4}, {5, 7, 6},
	{31, 33, 29}, {32, 32, 32}, {64, 64, 64},
	{65, 66, 67}, {128, 128, 128}, {13, 200, 301},
	{100, 65, 260}, {4, 300, 257},
}

func TestBlockedGemmMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range gemmShapes {
		m, k, n := dims[0], dims[1], dims[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want := refGemm(a, b)
		got := MatMul(a, b)
		for i, w := range want.Data() {
			if got.Data()[i] != w {
				t.Fatalf("MatMul %v: element %d = %v, want %v (bitwise)", dims, i, got.Data()[i], w)
			}
		}
	}
}

func TestBlockedGemmTransposedVariantsBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range gemmShapes {
		m, k, n := dims[0], dims[1], dims[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want := refGemm(a, b)
		gotNT := MatMulNT(a, Transpose2D(b))
		gotTN := MatMulTN(Transpose2D(a), b)
		for i, w := range want.Data() {
			if gotNT.Data()[i] != w {
				t.Fatalf("MatMulNT %v: element %d = %v, want %v (bitwise)", dims, i, gotNT.Data()[i], w)
			}
			if gotTN.Data()[i] != w {
				t.Fatalf("MatMulTN %v: element %d = %v, want %v (bitwise)", dims, i, gotTN.Data()[i], w)
			}
		}
	}
}

// TestGemmParallelismInvariance pins the worker-count independence the
// batching server relies on: the same product must be bitwise identical
// whether computed serially or split over row panels.
func TestGemmParallelismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := Randn(rng, 1, 70, 130)
	b := Randn(rng, 1, 130, 90)
	orig := Parallelism()
	defer SetParallelism(orig)
	SetParallelism(1)
	serial := MatMul(a, b)
	SetParallelism(8)
	parallel := MatMul(a, b)
	for i, w := range serial.Data() {
		if parallel.Data()[i] != w {
			t.Fatalf("element %d differs across parallelism: %v vs %v", i, parallel.Data()[i], w)
		}
	}
}

// TestGemmRowsIndependentOfBatch pins the property the micro-batching path
// needs end to end: row i of A @ B only depends on row i of A, bitwise, no
// matter how many other rows ride along in the product (batch-of-1 takes the
// small-product fallback, batch-of-64 the blocked kernel).
func TestGemmRowsIndependentOfBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const batch, k, n = 64, 80, 50
	big := Randn(rng, 1, batch, k)
	w := Randn(rng, 1, k, n)
	all := MatMul(big, w)
	for i := 0; i < batch; i += 17 {
		row := FromSlice(append([]float32(nil), big.Row(i)...), 1, k)
		solo := MatMul(row, w)
		for j, v := range solo.Data() {
			if all.Row(i)[j] != v {
				t.Fatalf("row %d col %d: batched %v, solo %v", i, j, all.Row(i)[j], v)
			}
		}
	}
}

func TestGemmAgainstFloat64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := Randn(rng, 1, 96, 96)
	b := Randn(rng, 1, 96, 96)
	got := MatMul(a, b)
	for i := 0; i < 96; i++ {
		for j := 0; j < 96; j++ {
			var s float64
			for p := 0; p < 96; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			if d := math.Abs(float64(got.At(i, j)) - s); d > 1e-3 {
				t.Fatalf("(%d,%d): %v vs float64 %v", i, j, got.At(i, j), s)
			}
		}
	}
}
