package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the goroutine fan-out of parallel kernels. It defaults
// to GOMAXPROCS and can be lowered for deterministic single-threaded runs.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetParallelism sets the number of worker goroutines used by parallel
// kernels (matmul, convolution). Values < 1 reset to GOMAXPROCS.
// It is intended for test setup and benchmarking, not concurrent use.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
}

// Parallelism reports the current worker count used by parallel kernels.
func Parallelism() int { return maxWorkers }

// parfor splits [0,n) into contiguous chunks and runs body on each chunk,
// using up to maxWorkers goroutines. It waits for all chunks to finish.
// For small n it runs inline to avoid goroutine overhead.
func parfor(n int, body func(start, end int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			body(s, e)
		}(start, end)
	}
	wg.Wait()
}
