package tensor

import "fmt"

// ConvDims describes a 2-D convolution geometry shared by im2col/col2im and
// the convolution layers built on top of them.
type ConvDims struct {
	InC, InH, InW int // input channels and spatial size
	KH, KW        int // kernel size
	Stride, Pad   int // symmetric stride and zero padding
	OutH, OutW    int // derived output spatial size
}

// NewConvDims validates and derives the output geometry for a convolution.
func NewConvDims(inC, inH, inW, kh, kw, stride, pad int) ConvDims {
	if stride < 1 {
		panic(fmt.Sprintf("tensor: conv stride %d < 1", stride))
	}
	if pad < 0 {
		panic(fmt.Sprintf("tensor: conv pad %d < 0", pad))
	}
	outH := (inH+2*pad-kh)/stride + 1
	outW := (inW+2*pad-kw)/stride + 1
	if outH < 1 || outW < 1 {
		panic(fmt.Sprintf("tensor: conv output %dx%d invalid for in %dx%d k %dx%d s %d p %d",
			outH, outW, inH, inW, kh, kw, stride, pad))
	}
	return ConvDims{InC: inC, InH: inH, InW: inW, KH: kh, KW: kw, Stride: stride, Pad: pad, OutH: outH, OutW: outW}
}

// ColRows returns the number of rows of the im2col matrix (inC*kh*kw).
func (d ConvDims) ColRows() int { return d.InC * d.KH * d.KW }

// ColCols returns the number of columns of the im2col matrix (outH*outW).
func (d ConvDims) ColCols() int { return d.OutH * d.OutW }

// Im2Col unfolds one image [C,H,W] into a matrix [C*kh*kw, outH*outW] so
// convolution becomes a single matrix product weight[F, C*kh*kw] @ cols.
// src is the image data; dst must have length ColRows()*ColCols().
func (d ConvDims) Im2Col(src, dst []float32) {
	if len(src) != d.InC*d.InH*d.InW {
		panic(fmt.Sprintf("tensor: Im2Col src length %d != %d", len(src), d.InC*d.InH*d.InW))
	}
	if len(dst) != d.ColRows()*d.ColCols() {
		panic(fmt.Sprintf("tensor: Im2Col dst length %d != %d", len(dst), d.ColRows()*d.ColCols()))
	}
	cols := d.ColCols()
	row := 0
	for c := 0; c < d.InC; c++ {
		plane := src[c*d.InH*d.InW : (c+1)*d.InH*d.InW]
		for ky := 0; ky < d.KH; ky++ {
			for kx := 0; kx < d.KW; kx++ {
				dstRow := dst[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < d.OutH; oy++ {
					sy := oy*d.Stride + ky - d.Pad
					if sy < 0 || sy >= d.InH {
						for ox := 0; ox < d.OutW; ox++ {
							dstRow[i] = 0
							i++
						}
						continue
					}
					srow := plane[sy*d.InW : (sy+1)*d.InW]
					for ox := 0; ox < d.OutW; ox++ {
						sx := ox*d.Stride + kx - d.Pad
						if sx < 0 || sx >= d.InW {
							dstRow[i] = 0
						} else {
							dstRow[i] = srow[sx]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Col2Im folds a column matrix back into an image, accumulating overlapping
// patches — the adjoint of Im2Col, used for input gradients. dst must be
// zeroed by the caller if accumulation from zero is desired.
func (d ConvDims) Col2Im(src, dst []float32) {
	if len(dst) != d.InC*d.InH*d.InW {
		panic(fmt.Sprintf("tensor: Col2Im dst length %d != %d", len(dst), d.InC*d.InH*d.InW))
	}
	if len(src) != d.ColRows()*d.ColCols() {
		panic(fmt.Sprintf("tensor: Col2Im src length %d != %d", len(src), d.ColRows()*d.ColCols()))
	}
	cols := d.ColCols()
	row := 0
	for c := 0; c < d.InC; c++ {
		plane := dst[c*d.InH*d.InW : (c+1)*d.InH*d.InW]
		for ky := 0; ky < d.KH; ky++ {
			for kx := 0; kx < d.KW; kx++ {
				srcRow := src[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < d.OutH; oy++ {
					sy := oy*d.Stride + ky - d.Pad
					if sy < 0 || sy >= d.InH {
						i += d.OutW
						continue
					}
					prow := plane[sy*d.InW : (sy+1)*d.InW]
					for ox := 0; ox < d.OutW; ox++ {
						sx := ox*d.Stride + kx - d.Pad
						if sx >= 0 && sx < d.InW {
							prow[sx] += srcRow[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}
