package tensor

// Cache-blocked GEMM in the Goto/BLIS style, shared by the three matmul
// variants (NN, NT, TN). The operand layouts differ only in their element
// strides, so one blocked driver serves all three:
//
//	for each column block of B (gemmNC wide):
//	  for each k block (gemmKC deep):
//	    pack the B block into panels of gemmNR contiguous columns
//	    parfor over row panels of A (gemmMR rows each):
//	      pack the A panel, then run the register-tiled micro-kernel
//	      against every packed B panel
//
// Packing makes the micro-kernel's loads contiguous regardless of operand
// orientation, and the gemmMR x gemmNR register tile keeps the C
// accumulators resident in registers across the whole k block. On amd64 the
// micro-kernel is four-wide SSE assembly (see gemm_amd64.s); elsewhere a
// pure-Go version with the same accumulation order is used.
//
// Accumulation order over k is ascending everywhere — identical to the
// naive small-product kernels and independent of worker count, block
// boundaries and row grouping — so results are bitwise identical across
// batch sizes and parallelism settings. The cloud micro-batching layer
// relies on this to return the same predictions batched or not.

const (
	gemmMR = 4   // micro-tile rows (C rows resident in registers)
	gemmNR = 8   // micro-tile cols (two 4-wide vectors per C row)
	gemmKC = 64  // k extent of a packed B block
	gemmNC = 256 // column extent of a packed B block

	// gemmSmall is the multiply-add count below which the naive kernels
	// win: packing costs more than it saves once operands fit in L1.
	gemmSmall = 32 * 1024
)

// gemmBlocked computes out[m,n] += A @ B where A(i,p) = a[i*ars+p*acs] and
// B(p,j) = b[p*brs+j*bcs]. out must be row-major [m,n] and zero-initialised
// (or hold a partial sum to accumulate onto).
func gemmBlocked(a []float32, ars, acs int, b []float32, brs, bcs int, out []float32, m, k, n int) {
	nPanels := (m + gemmMR - 1) / gemmMR
	bBuf := make([]float32, gemmKC*gemmNC)
	for jc := 0; jc < n; jc += gemmNC {
		nb := min(gemmNC, n-jc)
		nPanelsB := (nb + gemmNR - 1) / gemmNR
		for pc := 0; pc < k; pc += gemmKC {
			kb := min(gemmKC, k-pc)
			packB(bBuf, b, brs, bcs, pc, kb, jc, nb)
			parfor(nPanels, func(ps, pe int) {
				aBuf := make([]float32, kb*gemmMR)
				for pi := ps; pi < pe; pi++ {
					i0 := pi * gemmMR
					rows := min(gemmMR, m-i0)
					packA(aBuf, a, ars, acs, i0, rows, pc, kb)
					cBase := i0*n + jc
					for jp := 0; jp < nPanelsB; jp++ {
						j0 := jp * gemmNR
						cols := min(gemmNR, nb-j0)
						bp := bBuf[jp*kb*gemmNR : (jp+1)*kb*gemmNR]
						if rows == gemmMR && cols == gemmNR {
							micro4x8(&aBuf[0], &bp[0], kb, &out[cBase+j0], n)
						} else {
							microEdge(aBuf, bp, kb, out[cBase+j0:], n, rows, cols)
						}
					}
				}
			})
		}
	}
}

// packA interleaves an A panel of `rows` rows and kb columns into dst as
// [kb][gemmMR], zero-padding missing rows so the micro-kernel never
// branches on row count mid-loop.
func packA(dst, a []float32, ars, acs int, i0, rows, p0, kb int) {
	for p := 0; p < kb; p++ {
		base := (p0 + p) * acs
		d := dst[p*gemmMR : p*gemmMR+gemmMR]
		for r := 0; r < rows; r++ {
			d[r] = a[(i0+r)*ars+base]
		}
		for r := rows; r < gemmMR; r++ {
			d[r] = 0
		}
	}
}

// packB lays a kb x nb block of B out as ceil(nb/gemmNR) panels, each
// [kb][gemmNR], zero-padding the ragged final panel.
func packB(dst, b []float32, brs, bcs int, p0, kb, j0, nb int) {
	nPanels := (nb + gemmNR - 1) / gemmNR
	for jp := 0; jp < nPanels; jp++ {
		cols := min(gemmNR, nb-jp*gemmNR)
		panel := dst[jp*kb*gemmNR:]
		for p := 0; p < kb; p++ {
			base := (p0+p)*brs + (j0+jp*gemmNR)*bcs
			d := panel[p*gemmNR : p*gemmNR+gemmNR]
			for c := 0; c < cols; c++ {
				d[c] = b[base+c*bcs]
			}
			for c := cols; c < gemmNR; c++ {
				d[c] = 0
			}
		}
	}
}

// microEdge handles ragged tiles at the right and bottom borders. Same
// ascending-k mul-then-add accumulation as micro4x8, so border elements
// match the interior bitwise.
func microEdge(ap, bp []float32, kb int, c []float32, ldc, rows, cols int) {
	for r := 0; r < rows; r++ {
		cr := c[r*ldc : r*ldc+cols]
		for j := 0; j < cols; j++ {
			s := cr[j]
			for p := 0; p < kb; p++ {
				s += ap[p*gemmMR+r] * bp[p*gemmNR+j]
			}
			cr[j] = s
		}
	}
}
