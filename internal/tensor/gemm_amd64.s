//go:build amd64

#include "textflag.h"

// func micro4x8(ap, bp *float32, kb int, c *float32, ldc int)
//
// Register-tiled 4x8 GEMM micro-kernel: for p in [0,kb)
//
//	C[r][0:8] += Ap[p][r] * Bp[p][0:8]   (r = 0..3)
//
// Ap is packed [kb][4], Bp is packed [kb][8]. The eight C vectors
// (4 rows x two 4-wide halves) stay in X0-X7 for the whole k loop; each
// iteration broadcasts the four A scalars and streams 32 contiguous bytes
// of Bp. MULPS/ADDPS keep scalar IEEE mul-then-add semantics per element,
// matching the pure-Go kernels bitwise.
TEXT ·micro4x8(SB), NOSPLIT, $0-40
	MOVQ ap+0(FP), AX
	MOVQ bp+8(FP), BX
	MOVQ kb+16(FP), CX
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), SI
	SHLQ $2, SI          // row stride in bytes

	// Load the 4x8 C tile.
	MOVQ   DX, DI
	MOVUPS (DI), X0
	MOVUPS 16(DI), X1
	ADDQ   SI, DI
	MOVUPS (DI), X2
	MOVUPS 16(DI), X3
	ADDQ   SI, DI
	MOVUPS (DI), X4
	MOVUPS 16(DI), X5
	ADDQ   SI, DI
	MOVUPS (DI), X6
	MOVUPS 16(DI), X7

loop:
	MOVUPS (BX), X8      // Bp[p][0:4]
	MOVUPS 16(BX), X9    // Bp[p][4:8]

	MOVSS  (AX), X10     // broadcast Ap[p][0]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X0
	ADDPS  X11, X1

	MOVSS  4(AX), X12    // broadcast Ap[p][1]
	SHUFPS $0x00, X12, X12
	MOVAPS X12, X13
	MULPS  X8, X12
	MULPS  X9, X13
	ADDPS  X12, X2
	ADDPS  X13, X3

	MOVSS  8(AX), X10    // broadcast Ap[p][2]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X4
	ADDPS  X11, X5

	MOVSS  12(AX), X12   // broadcast Ap[p][3]
	SHUFPS $0x00, X12, X12
	MOVAPS X12, X13
	MULPS  X8, X12
	MULPS  X9, X13
	ADDPS  X12, X6
	ADDPS  X13, X7

	ADDQ $16, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  loop

	// Store the C tile back.
	MOVQ   DX, DI
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	ADDQ   SI, DI
	MOVUPS X2, (DI)
	MOVUPS X3, 16(DI)
	ADDQ   SI, DI
	MOVUPS X4, (DI)
	MOVUPS X5, 16(DI)
	ADDQ   SI, DI
	MOVUPS X6, (DI)
	MOVUPS X7, 16(DI)
	RET
