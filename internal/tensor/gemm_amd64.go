//go:build amd64

package tensor

// micro4x8 is the SSE micro-kernel: C[4,8] += Ap @ Bp for packed panels
// Ap [kb][4] and Bp [kb][8]. c addresses C(0,0) with row stride ldc
// (elements). Implemented in gemm_amd64.s with MULPS/ADDPS — elementwise
// IEEE multiply then add, the same operation sequence as the generic Go
// kernel, so results are bitwise identical across architectures.
//
//go:noescape
func micro4x8(ap, bp *float32, kb int, c *float32, ldc int)
