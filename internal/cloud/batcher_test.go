package cloud

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/meanet/meanet/internal/tensor"
)

// stubInfer builds a deterministic "model" for collector tests: sample i's
// logits put all mass on class int(x[i][0]) so every requester can verify it
// got its own row back, not a neighbour's.
func stubInfer(classes int) func(*tensor.Tensor) *tensor.Tensor {
	return func(x *tensor.Tensor) *tensor.Tensor {
		n := x.Dim(0)
		out := tensor.New(n, classes)
		for i := 0; i < n; i++ {
			out.Set(10, i, int(x.Sample(i).Data()[0])%classes)
		}
		return out
	}
}

// img returns a CHW image whose first element is v.
func img(v float32, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.Data()[0] = v
	return t
}

func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	b := newBatcher(BatchConfig{MaxBatch: 4, Linger: 200 * time.Millisecond}, stubInfer(8))
	defer b.close()
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			pred, conf, err := b.classify(img(float32(j), 1, 2, 2))
			if err != nil {
				errs <- err
				return
			}
			if int(pred) != j {
				t.Errorf("request %d got prediction %d", j, pred)
			}
			if conf <= 0 || conf > 1 {
				t.Errorf("request %d got confidence %v", j, conf)
			}
		}(j)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := b.batchedReqs.Load(); got != n {
		t.Fatalf("batched %d requests, want %d", got, n)
	}
	// 8 requests with MaxBatch 4 need at least two forwards; coalescing
	// must produce far fewer than one forward per request.
	if got := b.batches.Load(); got < 2 || got >= n {
		t.Fatalf("ran %d batches for %d requests with MaxBatch 4", got, n)
	}
}

func TestBatcherLingerFlushesPartialBatch(t *testing.T) {
	b := newBatcher(BatchConfig{MaxBatch: 64, Linger: 30 * time.Millisecond}, stubInfer(4))
	defer b.close()
	start := time.Now()
	pred, _, err := b.classify(img(2, 1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if pred != 2 {
		t.Fatalf("prediction %d, want 2", pred)
	}
	// A single request must not wait for 63 peers that never come: the
	// linger timer bounds its latency.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("single request took %v despite 30ms linger", elapsed)
	}
	if b.batches.Load() != 1 || b.batchedReqs.Load() != 1 {
		t.Fatalf("stats %d/%d, want 1/1", b.batches.Load(), b.batchedReqs.Load())
	}
}

func TestBatcherErrorFanOut(t *testing.T) {
	b := newBatcher(BatchConfig{MaxBatch: 8, Linger: 100 * time.Millisecond}, func(*tensor.Tensor) *tensor.Tensor {
		panic("model exploded")
	})
	defer b.close()
	const n = 4
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := b.classify(img(1, 1, 2, 2))
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("request in a failed batch returned no error")
		}
		if !strings.Contains(err.Error(), "model exploded") {
			t.Fatalf("error does not carry the cause: %v", err)
		}
	}
	if b.batches.Load() != 0 {
		t.Fatalf("failed forwards counted as batches: %d", b.batches.Load())
	}
}

func TestBatcherGroupsByShape(t *testing.T) {
	// The stub stacks the batch as [N, first-shape...]: if the collector
	// ever mixed shapes, Sample would misalign and predictions would be
	// wrong (or the stack would panic). Two shapes, interleaved requests.
	b := newBatcher(BatchConfig{MaxBatch: 16, Linger: 50 * time.Millisecond}, stubInfer(8))
	defer b.close()
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			shape := []int{1, 2, 2}
			if j%2 == 1 {
				shape = []int{2, 3, 3}
			}
			pred, _, err := b.classify(img(float32(j), shape...))
			if err != nil {
				t.Errorf("request %d: %v", j, err)
				return
			}
			if int(pred) != j {
				t.Errorf("request %d (shape %v) got prediction %d", j, shape, pred)
			}
		}(j)
	}
	wg.Wait()
	if got := b.batchedReqs.Load(); got != 8 {
		t.Fatalf("batched %d requests, want 8", got)
	}
}

func TestBatcherCloseUnblocksWaiters(t *testing.T) {
	release := make(chan struct{})
	b := newBatcher(BatchConfig{MaxBatch: 4, Linger: time.Millisecond}, func(x *tensor.Tensor) *tensor.Tensor {
		<-release // hold the forward so waiters are parked
		return tensor.New(x.Dim(0), 2)
	})
	done := make(chan error, 1)
	go func() {
		_, _, err := b.classify(img(0, 1, 2, 2))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the collector
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release) // collector finishes its forward, then sees done
	}()
	b.close()
	select {
	case err := <-done:
		// Either outcome is legal — the request was served just before
		// close, or it was cut off — but it must not hang.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("classify still blocked after batcher close")
	}
	// Requests after close fail fast.
	if _, _, err := b.classify(img(0, 1, 2, 2)); err == nil {
		t.Fatal("classify succeeded on a closed batcher")
	}
}

// TestBatcherShutdownPrefersDeliveredResponse is the regression test for the
// classify/close race: a request whose batch ran to completion must get its
// real result even when the done channel closes before the response lands.
// The forward is held open until shutdown is observably underway, so the old
// two-way select (resp vs done) would deterministically report
// errBatcherClosed with the genuine response in flight.
func TestBatcherShutdownPrefersDeliveredResponse(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	b := newBatcher(BatchConfig{MaxBatch: 1, Linger: time.Millisecond}, func(x *tensor.Tensor) *tensor.Tensor {
		close(entered)
		<-release
		return stubInfer(8)(x)
	})
	type result struct {
		pred int32
		err  error
	}
	got := make(chan result, 1)
	go func() {
		pred, _, err := b.classify(img(5, 1, 2, 2))
		got <- result{pred, err}
	}()
	<-entered // the batch is inside the forward pass
	closed := make(chan struct{})
	go func() {
		b.close() // closes done, then waits for the collector to drain
		close(closed)
	}()
	<-b.done       // the shutdown signal is now visible to the waiter
	close(release) // let the forward finish and deliver the response
	r := <-got
	if r.err != nil {
		t.Fatalf("delivered response lost to shutdown: %v", r.err)
	}
	if r.pred != 5 {
		t.Fatalf("prediction %d, want 5", r.pred)
	}
	<-closed
}
