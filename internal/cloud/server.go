// Package cloud implements the cloud AI server: a TCP service that runs a
// deep CNN (the paper uses a ResNet101; we use the deepest/widest model of
// our zoo) over raw images — and optionally a partitioned-network tail over
// edge features — returning predictions with confidences.
//
// Evaluation-mode forward passes of the nn stack are stateless, so requests
// from many connections are served concurrently without locking the model.
package cloud

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/meanet/meanet/internal/nn"
	"github.com/meanet/meanet/internal/protocol"
	"github.com/meanet/meanet/internal/tensor"
)

// Model is a cloud-side network: logits over an NCHW batch. It is satisfied
// by *models.Classifier (the standalone cloud CNN) and by Partitioned (an
// edge main block composed with a features tail).
type Model interface {
	Logits(x *tensor.Tensor, train bool) *tensor.Tensor
}

// Tail is the cloud half of a partitioned network for the features mode
// (§III-C "sending features"): a body continuing from edge features plus an
// exit.
type Tail struct {
	Body nn.Layer
	Exit nn.Layer
}

// Logits runs the tail on a feature batch.
func (t *Tail) Logits(f *tensor.Tensor, train bool) *tensor.Tensor {
	return t.Exit.Forward(t.Body.Forward(f, train), train)
}

// Partitioned composes an edge main block with a features tail into the raw
// model of a partitioned deployment: Logits(x) = tail(main(x)). A server
// built with Partitioned(main, tail) as its raw model and tail as its
// feature tail answers raw uploads and feature uploads of the same instance
// with bitwise-identical predictions (the kernels accumulate in the same
// order wherever the split runs), which is what lets the edge switch upload
// representation freely on channel cost alone.
func Partitioned(main nn.Layer, tail *Tail) Model {
	return &partitioned{main: main, tail: tail}
}

type partitioned struct {
	main nn.Layer
	tail *Tail
}

func (p *partitioned) Logits(x *tensor.Tensor, train bool) *tensor.Tensor {
	return p.tail.Logits(p.main.Forward(x, train), train)
}

// Stats are cumulative server counters, safe to read concurrently.
type Stats struct {
	Requests    uint64
	Errors      uint64
	BytesIn     uint64
	BytesOut    uint64
	ActiveConns int64
	TotalConns  uint64
	// Batches and BatchedRequests report micro-batching effectiveness:
	// forward passes run by the collector and the classify requests they
	// served. Zero when batching is disabled.
	Batches         uint64
	BatchedRequests uint64
	// InFlight and QueueDepth snapshot the instantaneous load — the same
	// numbers piggybacked on every result frame as the backpressure signal
	// (protocol.LoadStatus).
	InFlight   int64
	QueueDepth int64
	// Sheds counts classify frames answered with a shed frame by admission
	// control instead of being served (zero without a ShedPolicy). Shed
	// frames are not Requests: they were refused, not dispatched.
	Sheds uint64
	// InstancesServed counts the INSTANCES the server classified (batch
	// frames add their batch size), the unit the edge runtimes account in —
	// Requests counts frames, which under batching says little about volume.
	InstancesServed uint64
	// Relayed counts the instances a non-terminal stage server forwarded
	// downstream (terminal hops count theirs in InstancesServed instead —
	// the two never double-count one instance at one hop).
	Relayed uint64
}

// ShedPolicy bounds the load the server ACCEPTS: while either limit is hit,
// classify frames are answered with a protocol.MsgShed frame — carrying a
// RetryAfter hint and the load snapshot — instead of being parked or served.
// The limits read the same atomics the LoadStatus piggyback reads, so the
// check costs two atomic loads per request. Shedding closes the loop the
// piggybacked queue depth only hints at: a saturated server stops absorbing
// work into unbounded queues and tells every edge to serve its own instances
// for a while (the edge runtime treats a shed as an immediate edge fallback
// and holds offloads for RetryAfter). Ping frames are never shed — probes
// must work exactly when the server is busiest.
type ShedPolicy struct {
	// MaxQueue sheds while the micro-batch collectors hold at least this
	// many parked requests (0 = queue depth never sheds). Meaningful only
	// with WithBatching — client-assembled batch frames bypass the
	// collectors and are governed by MaxInFlight.
	MaxQueue int64
	// MaxInFlight sheds while at least this many dispatches are in flight
	// across all connections (0 = in-flight count never sheds).
	MaxInFlight int64
	// RetryAfter is the back-off hint carried in every shed frame
	// (default 50ms).
	RetryAfter time.Duration
}

func (p *ShedPolicy) fillDefaults() {
	if p.RetryAfter <= 0 {
		p.RetryAfter = 50 * time.Millisecond
	}
}

// Server serves classification requests over TCP.
type Server struct {
	raw       Model
	feat      *Tail       // nil when the features mode is unsupported
	batch     *batcher    // nil when micro-batching is disabled
	featBatch *batcher    // features-mode collector; nil unless batching and feat are both on
	shedPol   *ShedPolicy // nil when admission control is disabled

	// Stage-server mode (WithStage): all four are fixed before Listen and
	// read-only afterwards, like raw/feat above.
	stage         nn.Layer      // static chain stage served on MsgRelay; nil with chain = routed-only hop
	chain         []nn.Layer    // full serving chain for source-routed relays; nil = routed mode off
	stageInflight int           // per-connection relay dispatch bound
	failureExcl   time.Duration // downstream transport-failure exclusion window

	// Downstream failover entries (stage.go): the downs slice header is
	// fixed at config time and safe to read unlocked; downMu serializes
	// failover selection and each entry's exclusion-window fields (until,
	// shed). Empty downs = terminal hop.
	downMu sync.Mutex
	downs  []*downstreamState

	// Measured stage service time piggybacked on relay replies (stage.go).
	svcMu      sync.Mutex // guards svcEWMA, svcSamples
	svcEWMA    float64    // queue-normalized per-instance seconds
	svcSamples int

	mu     sync.Mutex // guards ln, conns, closed
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	requests    atomic.Uint64
	errorCount  atomic.Uint64
	bytesIn     atomic.Uint64
	bytesOut    atomic.Uint64
	active      atomic.Int64
	total       atomic.Uint64
	inflight    atomic.Int64  // requests currently being dispatched
	sheds       atomic.Uint64 // classify frames refused by admission control
	instServed  atomic.Uint64 // instances classified (batch frames count their size)
	relayed     atomic.Uint64 // instances forwarded downstream by a non-terminal stage
	relayActive atomic.Int64  // relay stage forwards running right now (svcEWMA normalization)
}

// Option configures optional server behaviour.
type Option func(*Server)

// WithBatching enables the micro-batching layer for classify requests:
// concurrent requests from any number of connections are coalesced into one
// batched forward pass (see BatchConfig). Raw-image and feature-tail
// requests collect into separate batches (they run different networks); the
// feature collector exists only when the server has a tail.
func WithBatching(cfg BatchConfig) Option {
	return func(s *Server) {
		s.batch = newBatcher(cfg, s.rawLogits)
		if s.feat != nil {
			s.featBatch = newBatcher(cfg, s.featLogits)
		}
	}
}

// WithShedding enables admission control: classify frames arriving while the
// server is past the policy's limits are answered with a shed frame instead
// of being accepted (see ShedPolicy).
func WithShedding(pol ShedPolicy) Option {
	pol.fillDefaults()
	return func(s *Server) { s.shedPol = &pol }
}

// rawLogits runs the raw-image classifier on an NCHW batch.
func (s *Server) rawLogits(x *tensor.Tensor) *tensor.Tensor { return s.raw.Logits(x, false) }

// featLogits runs the partitioned-network tail on an NCHW feature batch.
func (s *Server) featLogits(x *tensor.Tensor) *tensor.Tensor { return s.feat.Logits(x, false) }

// NewServer builds a server around a raw-image model (typically a
// *models.Classifier, or cloud.Partitioned for a partitioned deployment).
// tail may be nil. raw may be nil ONLY for a pure stage server (WithStage):
// such a hop serves relay frames and answers raw classify frames with an
// error, like a tail-less server answers features frames.
func NewServer(raw Model, tail *Tail, opts ...Option) (*Server, error) {
	s := &Server{raw: raw, feat: tail, conns: make(map[net.Conn]struct{})}
	for _, opt := range opts {
		opt(s)
	}
	if s.raw == nil && !s.stageMode() {
		return nil, errors.New("cloud: nil classifier")
	}
	return s, nil
}

// Listen binds the server to an address (use "127.0.0.1:0" for an ephemeral
// port) and starts the accept loop in a background goroutine.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cloud: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("cloud: server already closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return errors.New("cloud: server already listening")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr reports the bound address (nil before Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:    s.requests.Load(),
		Errors:      s.errorCount.Load(),
		BytesIn:     s.bytesIn.Load(),
		BytesOut:    s.bytesOut.Load(),
		ActiveConns: s.active.Load(),
		TotalConns:  s.total.Load(),
	}
	if s.batch != nil {
		st.Batches = s.batch.batches.Load()
		st.BatchedRequests = s.batch.batchedReqs.Load()
	}
	if s.featBatch != nil {
		st.Batches += s.featBatch.batches.Load()
		st.BatchedRequests += s.featBatch.batchedReqs.Load()
	}
	st.InFlight = s.inflight.Load()
	st.QueueDepth = int64(s.loadStatus().QueueDepth)
	st.Sheds = s.sheds.Load()
	st.InstancesServed = s.instServed.Load()
	st.Relayed = s.relayed.Load()
	return st
}

// queuedDepth sums the parked requests across the collectors (0 without
// batching) — shared by the LoadStatus piggyback and the shed check.
func (s *Server) queuedDepth() int64 {
	var queued int64
	if s.batch != nil {
		queued += s.batch.depth()
	}
	if s.featBatch != nil {
		queued += s.featBatch.depth()
	}
	return queued
}

// shouldShed is the admission check run per classify frame: true while the
// server is past either ShedPolicy limit. It reads the same atomics the
// LoadStatus piggyback snapshots, so admission costs nothing next to even
// the smallest forward pass.
func (s *Server) shouldShed() bool {
	p := s.shedPol
	if p == nil {
		return false
	}
	if p.MaxInFlight > 0 && s.inflight.Load() >= p.MaxInFlight {
		return true
	}
	return p.MaxQueue > 0 && s.queuedDepth() >= p.MaxQueue
}

// loadStatus snapshots the backpressure counters piggybacked on every result
// frame: collector queue depth plus the count of requests actually being
// SERVED (in-flight dispatches minus those parked in a collector — a parked
// request would otherwise count on both sides and saturation, queue
// outgrowing service, could never be observed). Reading a few atomics costs
// nothing next to a forward pass, and the edge gets a live congestion
// signal with zero extra round trips.
func (s *Server) loadStatus() protocol.LoadStatus {
	queued := s.queuedDepth()
	clamp := func(v int64) uint32 {
		if v < 0 {
			return 0
		}
		return uint32(v)
	}
	return protocol.LoadStatus{
		QueueDepth: clamp(queued),
		Active:     clamp(s.inflight.Load() - queued),
	}
}

// Close stops accepting, closes all active connections and waits for
// handlers to drain. It is safe to call multiple times.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if s.batch != nil {
		s.batch.close() // unblocks handlers parked in batcher.classify
	}
	if s.featBatch != nil {
		s.featBatch.close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.total.Add(1)
		s.active.Add(1)
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) removeConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.active.Add(-1)
	conn.Close()
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.removeConn(conn)
	// Responses from concurrent dispatches interleave on the connection in
	// completion order; frame IDs let the pipelined edge client sort them
	// out. The mutex keeps each frame write atomic and guards the broken
	// latch: after the first write failure the connection is closed and
	// every later in-flight dispatch becomes a no-op — without the latch
	// each would recount the error and re-close the dead connection.
	var wmu sync.Mutex
	writeBroken := false
	// inflight bounds concurrent dispatches per connection: a client that
	// pipelines faster than the collector drains must block in ReadFrame
	// (TCP backpressure), not grow an unbounded goroutine/tensor backlog.
	var inflight chan struct{}
	if s.batch != nil {
		inflight = make(chan struct{}, 2*s.batch.cfg.MaxBatch)
	}
	// Relay dispatches get their own concurrency bound: a non-terminal hop
	// blocks on its downstream round trip, so running relays inline would
	// stall this connection's read loop and collapse chain pipelining to
	// lockstep — while sharing the collector's inflight channel would let
	// slow relays starve micro-batch fills (and vice versa).
	var relayInflight chan struct{}
	if s.stageMode() {
		relayInflight = make(chan struct{}, s.stageInflight)
	}
	writeResp := func(resp protocol.Frame) {
		wmu.Lock()
		defer wmu.Unlock()
		if writeBroken {
			return
		}
		if err := protocol.WriteFrame(conn, resp); err != nil {
			writeBroken = true
			s.errorCount.Add(1)
			conn.Close() // fail the read loop too; the peer is gone
			return
		}
		s.bytesOut.Add(uint64(protocol.FrameWireSize(len(resp.Payload))))
	}
	for {
		f, err := protocol.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.errorCount.Add(1)
			}
			return // malformed stream or peer gone: drop the connection
		}
		// Full frame size, header included: the client's BytesSent counter
		// accounts whole frames, and the two ends must agree bitwise.
		s.bytesIn.Add(uint64(protocol.FrameWireSize(len(f.Payload))))
		if isClassify(f.Type) && !isRelayProbe(f) && s.shouldShed() {
			// Admission control: answer with a shed frame — the retry-after
			// hint plus the load snapshot that triggered it — and never park
			// or dispatch the work. The payload was already read (framing
			// must stay in sync) and is dropped here. The shed reply goes
			// through writeResp, the SAME first-write-failure latch as
			// results: sheds from this read loop interleave with results
			// from in-flight batcher deliveries on one connection, and an
			// unlatched shed write racing a close would recount the error
			// and re-close the dead connection.
			s.sheds.Add(1)
			writeResp(protocol.Frame{
				Type:    protocol.MsgShed,
				ID:      f.ID,
				Payload: protocol.EncodeShed(s.shedPol.RetryAfter, s.loadStatus()),
			})
			continue
		}
		if (f.Type == protocol.MsgRelay || f.Type == protocol.MsgRelayRoute) && s.stageMode() {
			// Keep reading while the stage (and any downstream hops) work on
			// this batch, so one pipelined upstream connection keeps every
			// hop of the chain busy at once. Same wait-group safety argument
			// as the collector path below.
			relayInflight <- struct{}{}
			s.wg.Add(1)
			go func(f protocol.Frame) {
				defer s.wg.Done()
				defer func() { <-relayInflight }()
				writeResp(s.dispatch(f))
			}(f)
			continue
		}
		collected := f.Type == protocol.MsgClassifyRaw && s.batch != nil ||
			f.Type == protocol.MsgClassifyFeat && s.featBatch != nil
		if collected {
			// Keep reading while this request sits in the collector, so
			// one pipelined connection can fill a batch by itself. Safe to
			// grow the wait group here: this handler's own entry keeps the
			// counter positive while Close drains.
			inflight <- struct{}{}
			s.wg.Add(1)
			go func(f protocol.Frame) {
				defer s.wg.Done()
				defer func() { <-inflight }()
				writeResp(s.dispatch(f))
			}(f)
			continue
		}
		writeResp(s.dispatch(f))
	}
}

// capabilities assembles what this server advertises in a MsgHello reply.
// Both facts are fixed at serve time (the tail is a constructor argument,
// batching is wired before Serve), so the reply is stable for the life of a
// connection and the edge may cache it.
func (s *Server) capabilities() protocol.Capabilities {
	c := protocol.Capabilities{TailCapable: s.feat != nil}
	if s.batch != nil {
		c.MaxBatch = uint32(s.batch.cfg.MaxBatch)
	}
	return c
}

// isClassify reports whether a frame type carries classification work — the
// frames admission control may shed (pings and unknown types never are).
// Relay frames — static and routed — carry exactly one stage of
// classification work, so a saturated hop sheds them like any other classify;
// the shed propagates back along the chain as a MsgShed and the edge takes
// its zero-charge hold.
func isClassify(t protocol.MsgType) bool {
	switch t {
	case protocol.MsgClassifyRaw, protocol.MsgClassifyFeat,
		protocol.MsgClassifyBatch, protocol.MsgClassifyFeatBatch,
		protocol.MsgRelay, protocol.MsgRelayRoute:
		return true
	default:
		return false
	}
}

// isRelayProbe reports whether a frame is a zero-instance chain probe. Like
// pings, probes are never shed: health checks must work exactly when the
// server is busiest.
func isRelayProbe(f protocol.Frame) bool {
	return f.Type == protocol.MsgRelay && protocol.IsRelayProbe(f.Payload)
}

// dispatch computes the response frame for a request frame.
func (s *Server) dispatch(f protocol.Frame) protocol.Frame {
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	switch f.Type {
	case protocol.MsgPing:
		return protocol.Frame{Type: protocol.MsgPong, ID: f.ID}
	case protocol.MsgHello:
		// Capability handshake: the reply tells a capability-aware router
		// whether features-mode frames can succeed here and how large the
		// micro-batch collector is. Never shed (isClassify excludes it): a
		// replica under pressure must still be able to introduce itself.
		return protocol.Frame{Type: protocol.MsgHello, ID: f.ID, Payload: protocol.EncodeHello(s.capabilities())}
	case protocol.MsgClassifyRaw:
		if s.raw == nil {
			return errorFrame(f.ID, "raw mode not supported by this server (stage-only hop)")
		}
		if s.batch != nil {
			return s.classifyCollected(s.batch, f)
		}
		return s.classify(f, s.rawLogits)
	case protocol.MsgClassifyFeat:
		if s.feat == nil {
			return errorFrame(f.ID, "features mode not supported by this server")
		}
		if s.featBatch != nil {
			return s.classifyCollected(s.featBatch, f)
		}
		return s.classify(f, s.featLogits)
	case protocol.MsgClassifyBatch:
		if s.raw == nil {
			return errorFrame(f.ID, "raw mode not supported by this server (stage-only hop)")
		}
		return s.classifyBatchFrame(f, s.rawLogits)
	case protocol.MsgClassifyFeatBatch:
		if s.feat == nil {
			return errorFrame(f.ID, "features mode not supported by this server")
		}
		return s.classifyBatchFrame(f, s.featLogits)
	case protocol.MsgRelay:
		if !s.stageMode() {
			// The stage-mode analogue of the MsgHello legacy contract: a
			// server without a configured stage (or predating the frame
			// entirely) answers MsgError, and the chain client surfaces it.
			return errorFrame(f.ID, "stage mode not supported by this server")
		}
		return s.relayFrame(f)
	case protocol.MsgRelayRoute:
		if len(s.chain) == 0 {
			return errorFrame(f.ID, "routed relay not supported by this server")
		}
		return s.routedFrame(f)
	default:
		return errorFrame(f.ID, fmt.Sprintf("unsupported message type %s", f.Type))
	}
}

func (s *Server) classify(f protocol.Frame, logits func(*tensor.Tensor) *tensor.Tensor) protocol.Frame {
	t, err := protocol.DecodeTensor(f.Payload)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	if t.Dims() != 3 {
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("expected CHW tensor, got rank %d", t.Dims()))
	}
	batch := t.Reshape(append([]int{1}, t.Shape()...)...)
	out, err := safeLogits(logits, batch)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	pred, conf := argmaxRow(out.Row(0))
	s.instServed.Add(1)
	return protocol.Frame{
		Type:    protocol.MsgResult,
		ID:      f.ID,
		Payload: protocol.EncodeResultLoad(int32(pred), conf, s.loadStatus()),
	}
}

// classifyCollected routes one single-instance request through a micro-batch
// collector, which fuses it with concurrent requests from other connections.
func (s *Server) classifyCollected(b *batcher, f protocol.Frame) protocol.Frame {
	t, err := protocol.DecodeTensor(f.Payload)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	if t.Dims() != 3 {
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("expected CHW tensor, got rank %d", t.Dims()))
	}
	pred, conf, err := b.classify(t)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	s.instServed.Add(1)
	return protocol.Frame{
		Type:    protocol.MsgResult,
		ID:      f.ID,
		Payload: protocol.EncodeResultLoad(pred, conf, s.loadStatus()),
	}
}

// classifyBatchFrame serves a client-assembled batch (MsgClassifyBatch or
// MsgClassifyFeatBatch): the payload already holds an NCHW tensor, so it
// runs as one forward pass directly, bypassing the collector.
func (s *Server) classifyBatchFrame(f protocol.Frame, logits func(*tensor.Tensor) *tensor.Tensor) protocol.Frame {
	t, err := protocol.DecodeTensor(f.Payload)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	if t.Dims() != 4 {
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("expected NCHW tensor, got rank %d", t.Dims()))
	}
	out, err := safeLogits(logits, t)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	results := make([]protocol.Result, t.Dim(0))
	for i := range results {
		pred, conf := argmaxRow(out.Row(i))
		results[i] = protocol.Result{Pred: int32(pred), Conf: conf}
	}
	s.instServed.Add(uint64(t.Dim(0)))
	return protocol.Frame{
		Type:    protocol.MsgResultBatch,
		ID:      f.ID,
		Payload: protocol.EncodeResultsLoad(results, s.loadStatus()),
	}
}

// safeLogits shields the connection handler from panics raised by the
// numeric kernels on geometry mismatches (e.g. a client sending an image of
// the wrong size); such requests get an error response instead of killing
// the server.
func safeLogits(logits func(*tensor.Tensor) *tensor.Tensor, batch *tensor.Tensor) (out *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cloud: inference failed: %v", r)
		}
	}()
	return logits(batch), nil
}

func errorFrame(id uint64, msg string) protocol.Frame {
	return protocol.Frame{Type: protocol.MsgError, ID: id, Payload: []byte(msg)}
}
