package cloud

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/meanet/meanet/internal/tensor"
)

// BatchConfig tunes the server's micro-batching layer: concurrent classify
// requests are coalesced into one batched forward pass of up to MaxBatch
// images, waiting at most Linger for stragglers once the first request of a
// batch has arrived.
type BatchConfig struct {
	// MaxBatch is the largest number of requests fused into one forward
	// pass (default 32).
	MaxBatch int
	// Linger is how long the collector holds an incomplete batch open
	// before running it (default 2ms). Zero keeps the default; batching
	// with no linger at all is just the unbatched path.
	Linger time.Duration
}

func (c *BatchConfig) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Linger <= 0 {
		c.Linger = 2 * time.Millisecond
	}
}

var errBatcherClosed = errors.New("cloud: server closed")

type batchRequest struct {
	img  *tensor.Tensor // CHW image
	resp chan batchResponse
}

type batchResponse struct {
	pred int32
	conf float32
	err  error
}

// batcher coalesces concurrent single-image classify requests into batched
// forward passes. Requests are grouped by image shape: a request whose
// geometry differs from the batch being collected flushes that batch and
// opens a new one, so a malformed request can only fail requests that share
// its (equally malformed) shape.
type batcher struct {
	cfg   BatchConfig
	infer func(*tensor.Tensor) *tensor.Tensor // batched NCHW -> logits [N,classes]

	reqs chan batchRequest
	done chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once

	batches     atomic.Uint64 // forward passes run
	batchedReqs atomic.Uint64 // requests served through those passes
	queued      atomic.Int64  // requests accepted but not yet answered
}

// newBatcher starts the collector goroutine.
func newBatcher(cfg BatchConfig, infer func(*tensor.Tensor) *tensor.Tensor) *batcher {
	cfg.fillDefaults()
	b := &batcher{
		cfg:   cfg,
		infer: infer,
		reqs:  make(chan batchRequest),
		done:  make(chan struct{}),
	}
	b.wg.Add(1)
	go b.collect()
	return b
}

// classify submits one CHW image and blocks until its slot of the batched
// forward completes (or the batcher shuts down).
func (b *batcher) classify(img *tensor.Tensor) (int32, float32, error) {
	req := batchRequest{img: img, resp: make(chan batchResponse, 1)}
	// queued counts requests PARKED ahead of a forward pass (the
	// backpressure signal); run() decrements it when the batch starts
	// executing. Every submitted request reaches run() exactly once — the
	// collector serves accepted batches even during shutdown, and a
	// shape-flushed pending request seeds the next batch unconditionally.
	b.queued.Add(1)
	select {
	case b.reqs <- req:
	case <-b.done:
		b.queued.Add(-1) // never submitted
		return 0, 0, errBatcherClosed
	}
	// Once the collector has accepted the request (the unbuffered send above
	// succeeded), it always delivers a response before exiting: on shutdown
	// it still runs the batch it accumulated, and a shape-flushed pending
	// request seeds the next batch unconditionally. Waiting on resp alone —
	// never racing it against the done signal — means a batch that ran to
	// completion during shutdown reports its real result instead of a bogus
	// errBatcherClosed.
	r := <-req.resp
	return r.pred, r.conf, r.err
}

// depth reports the requests parked ahead of a forward pass — the
// queue-depth half of the backpressure signal piggybacked on result frames.
// Requests whose batch is currently executing are not parked (they count as
// served in the server's Active number instead).
func (b *batcher) depth() int64 { return b.queued.Load() }

// close stops the collector. Safe to call multiple times.
func (b *batcher) close() {
	b.closeOnce.Do(func() { close(b.done) })
	b.wg.Wait()
}

func (b *batcher) collect() {
	defer b.wg.Done()
	var pending *batchRequest // first request of the next batch, set on a shape flush
	for {
		var first batchRequest
		if pending != nil {
			first, pending = *pending, nil
		} else {
			select {
			case first = <-b.reqs:
			case <-b.done:
				return
			}
		}
		batch := append(make([]batchRequest, 0, b.cfg.MaxBatch), first)
		timer := time.NewTimer(b.cfg.Linger)
	fill:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case r := <-b.reqs:
				if !r.img.SameShape(first.img) {
					pending = &r
					break fill
				}
				batch = append(batch, r)
			case <-timer.C:
				break fill
			case <-b.done:
				break fill // serve what was already accepted, then exit
			}
		}
		timer.Stop()
		b.run(batch)
	}
}

// run stacks a shape-uniform batch into one NCHW tensor, executes a single
// forward pass and fans the per-row results (or a shared error) back out.
func (b *batcher) run(batch []batchRequest) {
	b.queued.Add(-int64(len(batch))) // now executing, no longer parked
	x := tensor.New(append([]int{len(batch)}, batch[0].img.Shape()...)...)
	for i, r := range batch {
		copy(x.Sample(i).Data(), r.img.Data())
	}
	logits, err := safeLogits(b.infer, x)
	if err != nil {
		for _, r := range batch {
			r.resp <- batchResponse{err: err}
		}
		return
	}
	b.batches.Add(1)
	b.batchedReqs.Add(uint64(len(batch)))
	for i, r := range batch {
		pred, conf := argmaxRow(logits.Row(i))
		r.resp <- batchResponse{pred: int32(pred), conf: conf}
	}
}

// argmaxRow softmaxes one logits row and returns the winning class and its
// confidence — the same post-processing as the unbatched path, applied to
// bitwise-identical logits (see internal/tensor's accumulation-order
// guarantee), so batched and unbatched predictions agree exactly.
func argmaxRow(logits []float32) (int, float32) {
	probs := tensor.SoftmaxRow(logits)
	pred := 0
	for i, v := range probs {
		if v > probs[pred] {
			pred = i
		}
	}
	return pred, probs[pred]
}
