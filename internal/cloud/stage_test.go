package cloud

import (
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/meanet/meanet/internal/core"
	"github.com/meanet/meanet/internal/edge"
	"github.com/meanet/meanet/internal/nn"
	"github.com/meanet/meanet/internal/protocol"
	"github.com/meanet/meanet/internal/tensor"
)

// startStageServer brings up one stage hop on loopback.
func startStageServer(t *testing.T, stage nn.Layer, down Downstream) *Server {
	t.Helper()
	s, err := NewServer(nil, nil, WithStage(StageConfig{Stage: stage, Downstream: down}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialHop(t *testing.T, s *Server) *edge.TCPClient {
	t.Helper()
	c, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestStageChainMatchesMonolithic relays a batch through a two-hop stage
// chain and checks predictions AND confidences bitwise against the in-process
// monolithic forward — the stages reuse the classifier's own layer objects,
// so any drift would be a serving-path bug, not numerics.
func TestStageChainMatchesMonolithic(t *testing.T) {
	cls := testClassifier(t, 41)
	chain := core.FlattenChain(cls.Backbone, cls.Exit)
	if len(chain) < 3 {
		t.Fatalf("test chain too short to cut: %d units", len(chain))
	}
	stages, err := core.Partition(chain, []core.CutPoint{core.CutPoint(len(chain) / 2)})
	if err != nil {
		t.Fatal(err)
	}
	terminal := startStageServer(t, stages[1], nil)
	first := startStageServer(t, stages[0], dialHop(t, terminal))
	client := dialHop(t, first)

	rng := rand.New(rand.NewSource(42))
	batch := tensor.Randn(rng, 1, 4, 3, 8, 8)
	rs, err := client.RelayActivations(batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("%d results for 4 instances", len(rs))
	}
	logits := cls.Logits(batch, false)
	for i, r := range rs {
		// The contract is chain == monolithic POST-PROCESSED output, so the
		// reference goes through the server's own argmax helper.
		p, c := argmaxRow(logits.Row(i))
		wantPred, wantConf := int32(p), c
		if r.Pred != wantPred || r.Conf != wantConf {
			t.Fatalf("row %d: chain gave %d/%v, monolithic %d/%v", i, r.Pred, r.Conf, wantPred, wantConf)
		}
	}

	// Accounting: the first hop forwarded, the terminal hop served.
	if st := first.Stats(); st.Relayed != 4 || st.InstancesServed != 0 {
		t.Fatalf("first hop stats %+v", st)
	}
	if st := terminal.Stats(); st.Relayed != 0 || st.InstancesServed != 4 {
		t.Fatalf("terminal hop stats %+v", st)
	}
}

// TestRelayTTLExhausted drives a frame whose hop budget runs out at a
// non-terminal hop: the chain must answer with an error instead of
// forwarding — the cycle guard.
func TestRelayTTLExhausted(t *testing.T) {
	cls := testClassifier(t, 43)
	chain := core.FlattenChain(cls.Backbone, cls.Exit)
	stages, err := core.Partition(chain, []core.CutPoint{1})
	if err != nil {
		t.Fatal(err)
	}
	terminal := startStageServer(t, stages[1], nil)
	first := startStageServer(t, stages[0], dialHop(t, terminal))
	client := dialHop(t, first)

	rng := rand.New(rand.NewSource(44))
	batch := tensor.Randn(rng, 1, 1, 3, 8, 8)
	if _, err := client.RelayActivations(batch, 0); err == nil || !strings.Contains(err.Error(), "TTL exhausted") {
		t.Fatalf("ttl=0 through a non-terminal hop: %v", err)
	}
	// A terminal hop needs no hop budget: ttl=0 straight at it still serves.
	direct := dialHop(t, terminal)
	mid := stages[0].Forward(batch, false)
	if _, err := direct.RelayActivations(mid, 0); err != nil {
		t.Fatalf("ttl=0 at the terminal hop refused: %v", err)
	}
}

// TestStageOnlyServerRejectsClassify pins the pure-relay-hop contract: a
// server with only a stage answers classify frames with an error (not a
// crash, not a hang) and keeps the connection serving relays.
func TestStageOnlyServerRejectsClassify(t *testing.T) {
	cls := testClassifier(t, 45)
	chain := core.FlattenChain(cls.Backbone, cls.Exit)
	stages, err := core.Partition(chain, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := startStageServer(t, stages[0], nil)
	client := dialHop(t, s)
	rng := rand.New(rand.NewSource(46))
	img := tensor.Randn(rng, 1, 3, 8, 8)
	if _, _, err := client.Classify(img); err == nil || !strings.Contains(err.Error(), "raw mode not supported") {
		t.Fatalf("stage-only server served a raw classify: %v", err)
	}
	if _, err := client.RelayActivations(img.Reshape(1, 3, 8, 8), 1); err != nil {
		t.Fatalf("relay broken after rejected classify: %v", err)
	}
}

// TestRelayRejectsMalformedPayloads: garbage payloads and non-NCHW tensors
// get error frames; the connection survives.
//
// meanet:frame-writer
func TestRelayRejectsMalformedPayloads(t *testing.T) {
	cls := testClassifier(t, 47)
	chain := core.FlattenChain(cls.Backbone, cls.Exit)
	stages, err := core.Partition(chain, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := startStageServer(t, stages[0], nil)
	client := dialHop(t, s)

	rng := rand.New(rand.NewSource(48))
	chw := tensor.Randn(rng, 1, 3, 8, 8) // rank 3 — client itself must refuse
	if _, err := client.RelayActivations(chw, 1); err == nil {
		t.Fatal("client relayed a non-NCHW tensor")
	}
	// The server-side rank check needs a hand-built frame.
	f := protocol.Frame{
		Type:    protocol.MsgRelay,
		ID:      7,
		Payload: protocol.EncodeActivation(1, tensor.Randn(rng, 1, 2, 3)),
	}
	resp := s.dispatch(f)
	if resp.Type != protocol.MsgError || !strings.Contains(string(resp.Payload), "NCHW") {
		t.Fatalf("rank-3 activation answered with %s %q", resp.Type, resp.Payload)
	}
	if resp := s.dispatch(protocol.Frame{Type: protocol.MsgRelay, ID: 8, Payload: []byte{1, 2}}); resp.Type != protocol.MsgError {
		t.Fatalf("garbage relay payload answered with %s", resp.Type)
	}
}

// In-process fake downstreams for the failover and shed-propagation tests.
// They implement only the base Downstream interface — the failover machinery
// must work against a minimal transport.

// failingDown fails every attempt at the transport level.
type failingDown struct{ calls atomic.Int64 }

func (d *failingDown) RelayActivations(*tensor.Tensor, uint8) ([]protocol.Result, error) {
	d.calls.Add(1)
	return nil, errors.New("dial tcp: connection refused (test stand-in)")
}

// sheddingDown refuses every attempt by admission control, carrying a hint.
type sheddingDown struct {
	retry time.Duration
	calls atomic.Int64
}

func (d *sheddingDown) RelayActivations(*tensor.Tensor, uint8) ([]protocol.Result, error) {
	d.calls.Add(1)
	return nil, &edge.ShedError{RetryAfter: d.retry}
}

// okDown terminates the chain in-process with zeroed results.
type okDown struct{ calls atomic.Int64 }

func (d *okDown) RelayActivations(batch *tensor.Tensor, _ uint8) ([]protocol.Result, error) {
	d.calls.Add(1)
	return make([]protocol.Result, batch.Dim(0)), nil
}

// relayBatch hand-builds a one-instance static relay frame for dispatch-level
// failover tests.
func relayBatch(rng *rand.Rand, id uint64) protocol.Frame {
	return protocol.Frame{
		Type:    protocol.MsgRelay,
		ID:      id,
		Payload: protocol.EncodeActivation(4, tensor.Randn(rng, 1, 1, 3, 8, 8)),
	}
}

// TestRelaySlotReleasedOnDownstreamError pins the MaxInFlight accounting on
// the failure path: with a single relay slot and a dead downstream, every
// sequential relay must still be ANSWERED (with the downstream error), not
// parked behind a leaked slot. Before reading this as trivial, note the slot
// is taken in the read loop and released in a deferred recv on the dispatch
// goroutine — this test is what keeps that pairing honest.
func TestRelaySlotReleasedOnDownstreamError(t *testing.T) {
	down := &failingDown{}
	s, err := NewServer(nil, nil, WithStage(StageConfig{
		Stage:       nn.Identity{},
		Downstream:  down,
		MaxInFlight: 1,
		// Keep the dead downstream in a permanent exclusion window so every
		// frame exercises the last-resort retry path too.
		FailureExclusion: time.Hour,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(49))
	batch := tensor.Randn(rng, 1, 1, 3, 8, 8)
	for i := 0; i < 3; i++ {
		_, err := client.RelayActivations(batch, 4)
		if err == nil || !strings.Contains(err.Error(), "downstream relay") {
			t.Fatalf("relay %d: want the downstream error surfaced promptly, got %v", i, err)
		}
	}
	if got := down.calls.Load(); got != 3 {
		t.Fatalf("dead downstream attempted %d times for 3 relays", got)
	}
}

// TestDownstreamShedPropagatesAsShed pins the chain shed contract end to end:
// a downstream refusal by admission control must come back upstream as
// MsgShed — errors.Is(_, ErrShed) with the RetryAfter hint preserved — never
// as a generic MsgError, or the edge would charge a failure (and burn a
// retry) for what is a zero-charge hold.
func TestDownstreamShedPropagatesAsShed(t *testing.T) {
	const hint = 40 * time.Millisecond
	down := &sheddingDown{retry: hint}
	s, err := NewServer(nil, nil, WithStage(StageConfig{Stage: nn.Identity{}, Downstream: down}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(50))
	_, err = client.RelayActivations(tensor.Randn(rng, 1, 1, 3, 8, 8), 4)
	if !errors.Is(err, edge.ErrShed) {
		t.Fatalf("downstream shed surfaced as a non-shed error: %v", err)
	}
	var se *edge.ShedError
	if !errors.As(err, &se) {
		t.Fatalf("shed error lost its type through the chain: %v", err)
	}
	if se.RetryAfter != hint {
		t.Fatalf("retry-after hint %v survived the hop as %v", hint, se.RetryAfter)
	}
}

// TestDownstreamFailoverOrderAndExclusion drives tryDownstreams through the
// PR 6 exclusion semantics applied hop-locally: a failed preferred entry is
// excluded and the alternate serves; while the window holds, the alternate is
// tried FIRST (the dead entry is not hammered); and when both downstreams
// shed, the hop answers MsgShed carrying the LARGEST hint.
func TestDownstreamFailoverOrderAndExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	bad, good := &failingDown{}, &okDown{}
	s, err := NewServer(nil, nil, WithStage(StageConfig{
		Stage:            nn.Identity{},
		Downstreams:      []Downstream{bad, good},
		FailureExclusion: time.Hour, // window must outlive the test
	}))
	if err != nil {
		t.Fatal(err)
	}

	// First frame: the preferred entry fails, the alternate serves it.
	if resp := s.dispatch(relayBatch(rng, 1)); resp.Type != protocol.MsgResultBatch {
		t.Fatalf("failover frame answered with %s %q", resp.Type, resp.Payload)
	}
	if bad.calls.Load() != 1 || good.calls.Load() != 1 {
		t.Fatalf("first frame attempts: bad %d, good %d (want 1, 1)", bad.calls.Load(), good.calls.Load())
	}
	// While the exclusion window holds, the healthy entry is preferred and
	// the dead one is never re-attempted (it would only be retried as a last
	// resort if the healthy one also failed).
	for id := uint64(2); id <= 4; id++ {
		if resp := s.dispatch(relayBatch(rng, id)); resp.Type != protocol.MsgResultBatch {
			t.Fatalf("frame %d answered with %s %q", id, resp.Type, resp.Payload)
		}
	}
	if bad.calls.Load() != 1 || good.calls.Load() != 4 {
		t.Fatalf("excluded entry re-attempted: bad %d, good %d (want 1, 4)", bad.calls.Load(), good.calls.Load())
	}

	// All-shed hop: the refusal propagates as MsgShed with the largest hint,
	// and BOTH entries were offered the frame before the hop gave up.
	shedA, shedB := &sheddingDown{retry: 30 * time.Millisecond}, &sheddingDown{retry: 70 * time.Millisecond}
	s2, err := NewServer(nil, nil, WithStage(StageConfig{
		Stage:       nn.Identity{},
		Downstreams: []Downstream{shedA, shedB},
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp := s2.dispatch(relayBatch(rng, 5))
	if resp.Type != protocol.MsgShed {
		t.Fatalf("all-shed chain answered with %s %q, want MsgShed", resp.Type, resp.Payload)
	}
	retryAfter, _, _, err := protocol.DecodeShed(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if retryAfter != 70*time.Millisecond {
		t.Fatalf("propagated hint %v, want the largest downstream hint 70ms", retryAfter)
	}
	if shedA.calls.Load() != 1 || shedB.calls.Load() != 1 {
		t.Fatalf("shed attempts: A %d, B %d (want 1, 1)", shedA.calls.Load(), shedB.calls.Load())
	}

	// Mixed shed + transport failure is NOT all-shed: the hop must report an
	// error (something is actually broken), not a hold.
	s3, err := NewServer(nil, nil, WithStage(StageConfig{
		Stage:       nn.Identity{},
		Downstreams: []Downstream{&sheddingDown{retry: 10 * time.Millisecond}, &failingDown{}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if resp := s3.dispatch(relayBatch(rng, 6)); resp.Type != protocol.MsgError {
		t.Fatalf("mixed shed+failure chain answered with %s, want MsgError", resp.Type)
	}
}

// TestNewServerStageOnly: a pure relay hop needs no models, but a server with
// neither models nor a stage is still rejected.
func TestNewServerStageOnly(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Fatal("model-less, stage-less server accepted")
	}
	if _, err := NewServer(nil, nil, WithStage(StageConfig{Stage: nn.Identity{}})); err != nil {
		t.Fatalf("stage-only server rejected: %v", err)
	}
}
