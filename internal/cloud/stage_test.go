package cloud

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/meanet/meanet/internal/core"
	"github.com/meanet/meanet/internal/edge"
	"github.com/meanet/meanet/internal/nn"
	"github.com/meanet/meanet/internal/protocol"
	"github.com/meanet/meanet/internal/tensor"
)

// startStageServer brings up one stage hop on loopback.
func startStageServer(t *testing.T, stage nn.Layer, down Downstream) *Server {
	t.Helper()
	s, err := NewServer(nil, nil, WithStage(StageConfig{Stage: stage, Downstream: down}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialHop(t *testing.T, s *Server) *edge.TCPClient {
	t.Helper()
	c, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestStageChainMatchesMonolithic relays a batch through a two-hop stage
// chain and checks predictions AND confidences bitwise against the in-process
// monolithic forward — the stages reuse the classifier's own layer objects,
// so any drift would be a serving-path bug, not numerics.
func TestStageChainMatchesMonolithic(t *testing.T) {
	cls := testClassifier(t, 41)
	chain := core.FlattenChain(cls.Backbone, cls.Exit)
	if len(chain) < 3 {
		t.Fatalf("test chain too short to cut: %d units", len(chain))
	}
	stages, err := core.Partition(chain, []core.CutPoint{core.CutPoint(len(chain) / 2)})
	if err != nil {
		t.Fatal(err)
	}
	terminal := startStageServer(t, stages[1], nil)
	first := startStageServer(t, stages[0], dialHop(t, terminal))
	client := dialHop(t, first)

	rng := rand.New(rand.NewSource(42))
	batch := tensor.Randn(rng, 1, 4, 3, 8, 8)
	rs, err := client.RelayActivations(batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("%d results for 4 instances", len(rs))
	}
	logits := cls.Logits(batch, false)
	for i, r := range rs {
		// The contract is chain == monolithic POST-PROCESSED output, so the
		// reference goes through the server's own argmax helper.
		p, c := argmaxRow(logits.Row(i))
		wantPred, wantConf := int32(p), c
		if r.Pred != wantPred || r.Conf != wantConf {
			t.Fatalf("row %d: chain gave %d/%v, monolithic %d/%v", i, r.Pred, r.Conf, wantPred, wantConf)
		}
	}

	// Accounting: the first hop forwarded, the terminal hop served.
	if st := first.Stats(); st.Relayed != 4 || st.InstancesServed != 0 {
		t.Fatalf("first hop stats %+v", st)
	}
	if st := terminal.Stats(); st.Relayed != 0 || st.InstancesServed != 4 {
		t.Fatalf("terminal hop stats %+v", st)
	}
}

// TestRelayTTLExhausted drives a frame whose hop budget runs out at a
// non-terminal hop: the chain must answer with an error instead of
// forwarding — the cycle guard.
func TestRelayTTLExhausted(t *testing.T) {
	cls := testClassifier(t, 43)
	chain := core.FlattenChain(cls.Backbone, cls.Exit)
	stages, err := core.Partition(chain, []core.CutPoint{1})
	if err != nil {
		t.Fatal(err)
	}
	terminal := startStageServer(t, stages[1], nil)
	first := startStageServer(t, stages[0], dialHop(t, terminal))
	client := dialHop(t, first)

	rng := rand.New(rand.NewSource(44))
	batch := tensor.Randn(rng, 1, 1, 3, 8, 8)
	if _, err := client.RelayActivations(batch, 0); err == nil || !strings.Contains(err.Error(), "TTL exhausted") {
		t.Fatalf("ttl=0 through a non-terminal hop: %v", err)
	}
	// A terminal hop needs no hop budget: ttl=0 straight at it still serves.
	direct := dialHop(t, terminal)
	mid := stages[0].Forward(batch, false)
	if _, err := direct.RelayActivations(mid, 0); err != nil {
		t.Fatalf("ttl=0 at the terminal hop refused: %v", err)
	}
}

// TestStageOnlyServerRejectsClassify pins the pure-relay-hop contract: a
// server with only a stage answers classify frames with an error (not a
// crash, not a hang) and keeps the connection serving relays.
func TestStageOnlyServerRejectsClassify(t *testing.T) {
	cls := testClassifier(t, 45)
	chain := core.FlattenChain(cls.Backbone, cls.Exit)
	stages, err := core.Partition(chain, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := startStageServer(t, stages[0], nil)
	client := dialHop(t, s)
	rng := rand.New(rand.NewSource(46))
	img := tensor.Randn(rng, 1, 3, 8, 8)
	if _, _, err := client.Classify(img); err == nil || !strings.Contains(err.Error(), "raw mode not supported") {
		t.Fatalf("stage-only server served a raw classify: %v", err)
	}
	if _, err := client.RelayActivations(img.Reshape(1, 3, 8, 8), 1); err != nil {
		t.Fatalf("relay broken after rejected classify: %v", err)
	}
}

// TestRelayRejectsMalformedPayloads: garbage payloads and non-NCHW tensors
// get error frames; the connection survives.
//
// meanet:frame-writer
func TestRelayRejectsMalformedPayloads(t *testing.T) {
	cls := testClassifier(t, 47)
	chain := core.FlattenChain(cls.Backbone, cls.Exit)
	stages, err := core.Partition(chain, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := startStageServer(t, stages[0], nil)
	client := dialHop(t, s)

	rng := rand.New(rand.NewSource(48))
	chw := tensor.Randn(rng, 1, 3, 8, 8) // rank 3 — client itself must refuse
	if _, err := client.RelayActivations(chw, 1); err == nil {
		t.Fatal("client relayed a non-NCHW tensor")
	}
	// The server-side rank check needs a hand-built frame.
	f := protocol.Frame{
		Type:    protocol.MsgRelay,
		ID:      7,
		Payload: protocol.EncodeActivation(1, tensor.Randn(rng, 1, 2, 3)),
	}
	resp := s.dispatch(f)
	if resp.Type != protocol.MsgError || !strings.Contains(string(resp.Payload), "NCHW") {
		t.Fatalf("rank-3 activation answered with %s %q", resp.Type, resp.Payload)
	}
	if resp := s.dispatch(protocol.Frame{Type: protocol.MsgRelay, ID: 8, Payload: []byte{1, 2}}); resp.Type != protocol.MsgError {
		t.Fatalf("garbage relay payload answered with %s", resp.Type)
	}
}

// TestNewServerStageOnly: a pure relay hop needs no models, but a server with
// neither models nor a stage is still rejected.
func TestNewServerStageOnly(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Fatal("model-less, stage-less server accepted")
	}
	if _, err := NewServer(nil, nil, WithStage(StageConfig{Stage: nn.Identity{}})); err != nil {
		t.Fatalf("stage-only server rejected: %v", err)
	}
}
