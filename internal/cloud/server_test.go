package cloud

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/meanet/meanet/internal/edge"
	"github.com/meanet/meanet/internal/models"
	"github.com/meanet/meanet/internal/nn"
	"github.com/meanet/meanet/internal/protocol"
	"github.com/meanet/meanet/internal/tensor"
)

// testClassifier returns a small untrained (but deterministic) classifier.
func testClassifier(t *testing.T, seed int64) *models.Classifier {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := models.BuildResNet(rng, models.ResNetSpec{
		Name: "cloudtest", InChannels: 3, StemChannels: 4,
		Channels: []int{4, 8}, Blocks: []int{1, 1}, Strides: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return models.NewClassifier(rng, b, 5)
}

func startServer(t *testing.T, cls *models.Classifier, tail *Tail) *Server {
	t.Helper()
	s, err := NewServer(cls, tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerClassifyMatchesLocalModel(t *testing.T) {
	cls := testClassifier(t, 1)
	s := startServer(t, cls, nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(2))
	img := tensor.Randn(rng, 1, 3, 8, 8)
	pred, conf, err := client.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	// Local reference.
	inproc := &edge.InProcClient{Model: cls}
	wantPred, wantConf, err := inproc.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if pred != wantPred {
		t.Fatalf("remote pred %d, local pred %d", pred, wantPred)
	}
	if diff := conf - wantConf; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("remote conf %v, local conf %v", conf, wantConf)
	}
}

func TestServerPing(t *testing.T) {
	s := startServer(t, testClassifier(t, 3), nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsWrongGeometry(t *testing.T) {
	s := startServer(t, testClassifier(t, 4), nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(5))
	// 5 channels instead of 3: kernels must reject it, server must answer
	// with an error frame, and the connection must survive.
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 5, 8, 8)); err == nil {
		t.Fatal("wrong-geometry image accepted")
	}
	// The same client still works afterwards.
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err != nil {
		t.Fatalf("connection dead after error frame: %v", err)
	}
}

// TestServerDropsCorruptStream writes bytes that are deliberately NOT a
// frame — proving the server drops a corrupt stream — so it is a designated
// raw writer.
//
// meanet:frame-writer
func TestServerDropsCorruptStream(t *testing.T) {
	s := startServer(t, testClassifier(t, 6), nil)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not a MEA1 frame at all....")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a corrupt stream instead of dropping it")
	}
}

func TestServerFeatureMode(t *testing.T) {
	cls := testClassifier(t, 7)
	rng := rand.New(rand.NewSource(8))
	tail := &Tail{
		Body: nn.Identity{},
		Exit: models.NewExit(rng, "tail", 4, 5),
	}
	s := startServer(t, cls, tail)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	feat := tensor.Randn(rng, 1, 4, 4, 4)
	err = protocol.WriteFrame(conn, protocol.Frame{
		Type: protocol.MsgClassifyFeat, ID: 77, Payload: protocol.EncodeTensor(feat),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := protocol.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != protocol.MsgResult || f.ID != 77 {
		t.Fatalf("feature response %s id %d", f.Type, f.ID)
	}
}

func TestClientClassifyFeaturesEndToEnd(t *testing.T) {
	cls := testClassifier(t, 20)
	rng := rand.New(rand.NewSource(21))
	tail := &Tail{
		Body: nn.Identity{},
		Exit: models.NewExit(rng, "tail2", 8, 5),
	}
	s := startServer(t, cls, tail)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	feat := tensor.Randn(rng, 1, 8, 3, 3)
	pred, conf, err := client.ClassifyFeatures(feat)
	if err != nil {
		t.Fatal(err)
	}
	if pred < 0 || pred >= 5 || conf <= 0 || conf > 1 {
		t.Fatalf("implausible feature-mode result %d/%v", pred, conf)
	}
	// Reference: run the tail locally.
	batch := feat.Reshape(1, 8, 3, 3)
	want := tail.Logits(batch, false).ArgMaxRows()[0]
	if pred != want {
		t.Fatalf("feature-mode pred %d, local tail pred %d", pred, want)
	}
	// Raw and feature modes interleave on one connection.
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.ClassifyFeatures(feat); err != nil {
		t.Fatal(err)
	}
}

func TestServerFeatureModeUnsupported(t *testing.T) {
	s := startServer(t, testClassifier(t, 9), nil)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rng := rand.New(rand.NewSource(10))
	feat := tensor.Randn(rng, 1, 4, 4, 4)
	err = protocol.WriteFrame(conn, protocol.Frame{
		Type: protocol.MsgClassifyFeat, ID: 1, Payload: protocol.EncodeTensor(feat),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := protocol.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != protocol.MsgError {
		t.Fatalf("expected error frame, got %s", f.Type)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	cls := testClassifier(t, 11)
	s := startServer(t, cls, nil)
	const clients, perClient = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err != nil {
					errs <- err
					return
				}
			}
		}(int64(c))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Stats().Requests; got != clients*perClient {
		t.Fatalf("server saw %d requests, want %d", got, clients*perClient)
	}
}

func TestServerCloseIsIdempotentAndDrains(t *testing.T) {
	s := startServer(t, testClassifier(t, 12), nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err == nil {
		t.Fatal("classify succeeded against a closed server")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Fatal("nil classifier accepted")
	}
}

// deadWriteConn is a net.Conn whose reads replay a canned request stream and
// whose writes always fail — the shape of a peer that vanished mid-pipeline.
type deadWriteConn struct {
	r      *bytes.Reader
	mu     sync.Mutex
	writes int
	closes int
}

func (c *deadWriteConn) Read(p []byte) (int, error) { return c.r.Read(p) }
func (c *deadWriteConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	return 0, io.ErrClosedPipe
}
func (c *deadWriteConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closes++
	return nil
}
func (c *deadWriteConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *deadWriteConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *deadWriteConn) SetDeadline(t time.Time) error      { return nil }
func (c *deadWriteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *deadWriteConn) SetWriteDeadline(t time.Time) error { return nil }

// TestHandleConnLatchesFirstWriteFailure is the regression test for the
// writeResp error latch: several requests answered onto a dead connection
// must count ONE error and attempt ONE write and close, not one per
// in-flight dispatch.
func TestHandleConnLatchesFirstWriteFailure(t *testing.T) {
	s, err := NewServer(testClassifier(t, 30), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := protocol.WriteFrame(&buf, protocol.Frame{Type: protocol.MsgPing, ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	conn := &deadWriteConn{r: bytes.NewReader(buf.Bytes())}
	s.active.Add(1) // handleConn's removeConn decrements it
	s.wg.Add(1)
	s.handleConn(conn)
	if got := s.errorCount.Load(); got != 1 {
		t.Fatalf("Errors = %d after a dead connection, want 1 (latched)", got)
	}
	if conn.writes != 1 {
		t.Fatalf("server attempted %d writes on a dead connection, want 1", conn.writes)
	}
	// One close from the latch plus one from removeConn's normal teardown.
	if conn.closes != 2 {
		t.Fatalf("connection closed %d times, want 2", conn.closes)
	}
}

// featTestTail builds a small deterministic feature tail.
func featTestTail(t *testing.T, seed int64, inFeat, classes int) *Tail {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return &Tail{Body: nn.Identity{}, Exit: models.NewExit(rng, "tailtest", inFeat, classes)}
}

// TestFeatureBatchFrameMatchesSerial ships a client-assembled feature batch
// (MsgClassifyFeatBatch) and checks it bitwise against per-feature
// ClassifyFeatures calls.
func TestFeatureBatchFrameMatchesSerial(t *testing.T) {
	tail := featTestTail(t, 31, 8, 5)
	s := startServer(t, testClassifier(t, 31), tail)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(32))
	feats := make([]*tensor.Tensor, 6)
	for i := range feats {
		feats[i] = tensor.Randn(rng, 1, 8, 3, 3)
	}
	preds, confs, err := client.ClassifyFeaturesBatch(feats)
	if err != nil {
		t.Fatal(err)
	}
	for i, feat := range feats {
		pred, conf, err := client.ClassifyFeatures(feat)
		if err != nil {
			t.Fatal(err)
		}
		if preds[i] != pred || confs[i] != conf {
			t.Fatalf("feature %d: batch %d/%v, single %d/%v (must be bitwise identical)",
				i, preds[i], confs[i], pred, conf)
		}
	}
}

// TestFeatureBatchFrameUnsupported: a server with no tail must answer the
// feature batch frame with an error frame, not kill the connection.
func TestFeatureBatchFrameUnsupported(t *testing.T) {
	s := startServer(t, testClassifier(t, 33), nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(34))
	if _, _, err := client.ClassifyFeaturesBatch([]*tensor.Tensor{tensor.Randn(rng, 1, 8, 3, 3)}); err == nil {
		t.Fatal("tail-less server accepted a feature batch")
	}
	// The connection survives the error frame.
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err != nil {
		t.Fatalf("connection dead after feature batch rejection: %v", err)
	}
}

// TestFeatureModeThroughCollector: with batching enabled on a server that
// has a tail, concurrent single-feature requests coalesce through their own
// collector and stay bitwise identical to the unbatched feature path.
func TestFeatureModeThroughCollector(t *testing.T) {
	cls := testClassifier(t, 35)
	tail := featTestTail(t, 35, 8, 5)
	plain := startServer(t, cls, tail)
	batched, err := NewServer(cls, tail,
		WithBatching(BatchConfig{MaxBatch: 8, Linger: 100 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := batched.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { batched.Close() })

	rng := rand.New(rand.NewSource(36))
	const n = 8
	feats := make([]*tensor.Tensor, n)
	for i := range feats {
		feats[i] = tensor.Randn(rng, 1, 8, 3, 3)
	}
	ref, err := edge.DialCloud(plain.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	wantPred := make([]int, n)
	wantConf := make([]float64, n)
	for i, f := range feats {
		wantPred[i], wantConf[i], err = ref.ClassifyFeatures(f)
		if err != nil {
			t.Fatal(err)
		}
	}

	client, err := edge.DialCloud(batched.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	gotPred := make([]int, n)
	gotConf := make([]float64, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, conf, err := client.ClassifyFeatures(feats[i])
			if err != nil {
				errs <- err
				return
			}
			gotPred[i], gotConf[i] = pred, conf
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range feats {
		if gotPred[i] != wantPred[i] || gotConf[i] != wantConf[i] {
			t.Fatalf("feature %d: collector %d/%v, unbatched %d/%v (must be bitwise identical)",
				i, gotPred[i], gotConf[i], wantPred[i], wantConf[i])
		}
	}
	st := batched.Stats()
	if st.BatchedRequests != n {
		t.Fatalf("feature collector served %d requests, want %d", st.BatchedRequests, n)
	}
	if st.Batches >= n {
		t.Fatalf("feature requests did not coalesce: %d batches for %d requests", st.Batches, n)
	}
	t.Logf("feature mode: %d requests in %d forwards", st.BatchedRequests, st.Batches)
}

func TestServerStatsByteCounters(t *testing.T) {
	cls := testClassifier(t, 14)
	s := startServer(t, cls, nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(15))
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("byte counters not updated: %+v", st)
	}
	if st.TotalConns != 1 {
		t.Fatalf("TotalConns = %d, want 1", st.TotalConns)
	}
}

// TestServerShedsUnderSaturation drives the admission-control path: with the
// in-flight limit exceeded, classify requests (single and batch frames) are
// answered with shed frames carrying the RetryAfter hint and load snapshot,
// pings still work, and service resumes once the load drains.
func TestServerShedsUnderSaturation(t *testing.T) {
	cls := testClassifier(t, 40)
	s, err := NewServer(cls, nil, WithShedding(ShedPolicy{MaxInFlight: 1, RetryAfter: 123 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Saturate: pin the in-flight gauge past the limit.
	s.inflight.Add(5)
	rng := rand.New(rand.NewSource(41))
	img := tensor.Randn(rng, 1, 3, 8, 8)
	_, _, err = client.Classify(img)
	var shed *edge.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("saturated classify returned %v, want *edge.ShedError", err)
	}
	if !errors.Is(err, edge.ErrShed) {
		t.Fatal("shed error does not match edge.ErrShed")
	}
	if shed.RetryAfter != 123*time.Millisecond {
		t.Fatalf("RetryAfter hint %v, want 123ms", shed.RetryAfter)
	}
	if !shed.HasLoad {
		t.Fatal("shed frame carried no load snapshot")
	}
	// Batch frames are shed too.
	if _, _, err := client.ClassifyBatch([]*tensor.Tensor{img, img}); !errors.Is(err, edge.ErrShed) {
		t.Fatalf("saturated batch returned %v, want shed", err)
	}
	// Probes are never shed: a busy server must stay observable.
	if err := client.Ping(); err != nil {
		t.Fatalf("ping shed or failed under saturation: %v", err)
	}
	if got := s.Stats().Sheds; got != 2 {
		t.Fatalf("server counted %d sheds, want 2", got)
	}
	if got := client.Sheds(); got != 2 {
		t.Fatalf("client counted %d sheds, want 2", got)
	}
	if got := s.Stats().Requests; got != 1 { // the ping; sheds are refusals, not requests
		t.Fatalf("sheds counted as requests: %d", got)
	}

	// Load drains: the SAME connection serves again.
	s.inflight.Add(-5)
	if _, _, err := client.Classify(img); err != nil {
		t.Fatalf("classify after drain: %v", err)
	}
	if got := s.Stats().InstancesServed; got != 1 {
		t.Fatalf("InstancesServed = %d after one served classify, want 1", got)
	}
}

// TestServerShedsOnQueueDepth covers the second admission limit: parked
// collector work past MaxQueue sheds new classify frames.
func TestServerShedsOnQueueDepth(t *testing.T) {
	cls := testClassifier(t, 42)
	s, err := NewServer(cls, nil,
		WithBatching(BatchConfig{MaxBatch: 8, Linger: time.Millisecond}),
		WithShedding(ShedPolicy{MaxQueue: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(43))
	img := tensor.Randn(rng, 1, 3, 8, 8)
	// Pin the queue gauge past the limit (the collector itself would drain a
	// real queue nondeterministically fast).
	s.batch.queued.Add(3)
	if _, _, err := client.Classify(img); !errors.Is(err, edge.ErrShed) {
		t.Fatalf("deep queue returned %v, want shed", err)
	}
	s.batch.queued.Add(-3)
	if _, _, err := client.Classify(img); err != nil {
		t.Fatalf("classify after queue drain: %v", err)
	}
	// Default RetryAfter hint applies when the policy leaves it zero.
	if s.shedPol.RetryAfter != 50*time.Millisecond {
		t.Fatalf("default RetryAfter = %v, want 50ms", s.shedPol.RetryAfter)
	}
}

// TestShedWritesLatchedOnDeadConn is the regression test for the shutdown
// race: shed frames (written inline by the read loop) and results (written
// by in-flight dispatches) interleave on one connection, and BOTH must go
// through the same first-write-failure latch — on a dead connection the
// server attempts ONE write, counts ONE error and closes once (plus the
// normal teardown close), no matter how sheds and results interleave.
func TestShedWritesLatchedOnDeadConn(t *testing.T) {
	s, err := NewServer(testClassifier(t, 44), nil, WithShedding(ShedPolicy{MaxInFlight: 1}))
	if err != nil {
		t.Fatal(err)
	}
	s.inflight.Add(5) // every classify frame sheds
	rng := rand.New(rand.NewSource(45))
	img := protocol.EncodeTensor(tensor.Randn(rng, 1, 3, 8, 8))
	var buf bytes.Buffer
	for i := 0; i < 6; i++ {
		f := protocol.Frame{Type: protocol.MsgPing, ID: uint64(i)}
		if i%2 == 0 {
			f = protocol.Frame{Type: protocol.MsgClassifyRaw, ID: uint64(i), Payload: img}
		}
		if err := protocol.WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	conn := &deadWriteConn{r: bytes.NewReader(buf.Bytes())}
	s.active.Add(1) // handleConn's removeConn decrements it
	s.wg.Add(1)
	s.handleConn(conn)
	if got := s.errorCount.Load(); got != 1 {
		t.Fatalf("Errors = %d after a dead connection, want 1 (latched)", got)
	}
	if conn.writes != 1 {
		t.Fatalf("server attempted %d writes on a dead connection, want 1", conn.writes)
	}
	if conn.closes != 2 {
		t.Fatalf("connection closed %d times, want 2", conn.closes)
	}
}
