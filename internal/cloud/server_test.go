package cloud

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/meanet/meanet/internal/edge"
	"github.com/meanet/meanet/internal/models"
	"github.com/meanet/meanet/internal/nn"
	"github.com/meanet/meanet/internal/protocol"
	"github.com/meanet/meanet/internal/tensor"
)

// testClassifier returns a small untrained (but deterministic) classifier.
func testClassifier(t *testing.T, seed int64) *models.Classifier {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := models.BuildResNet(rng, models.ResNetSpec{
		Name: "cloudtest", InChannels: 3, StemChannels: 4,
		Channels: []int{4, 8}, Blocks: []int{1, 1}, Strides: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return models.NewClassifier(rng, b, 5)
}

func startServer(t *testing.T, cls *models.Classifier, tail *Tail) *Server {
	t.Helper()
	s, err := NewServer(cls, tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerClassifyMatchesLocalModel(t *testing.T) {
	cls := testClassifier(t, 1)
	s := startServer(t, cls, nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(2))
	img := tensor.Randn(rng, 1, 3, 8, 8)
	pred, conf, err := client.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	// Local reference.
	inproc := &edge.InProcClient{Model: cls}
	wantPred, wantConf, err := inproc.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if pred != wantPred {
		t.Fatalf("remote pred %d, local pred %d", pred, wantPred)
	}
	if diff := conf - wantConf; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("remote conf %v, local conf %v", conf, wantConf)
	}
}

func TestServerPing(t *testing.T) {
	s := startServer(t, testClassifier(t, 3), nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsWrongGeometry(t *testing.T) {
	s := startServer(t, testClassifier(t, 4), nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(5))
	// 5 channels instead of 3: kernels must reject it, server must answer
	// with an error frame, and the connection must survive.
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 5, 8, 8)); err == nil {
		t.Fatal("wrong-geometry image accepted")
	}
	// The same client still works afterwards.
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err != nil {
		t.Fatalf("connection dead after error frame: %v", err)
	}
}

func TestServerDropsCorruptStream(t *testing.T) {
	s := startServer(t, testClassifier(t, 6), nil)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not a MEA1 frame at all....")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a corrupt stream instead of dropping it")
	}
}

func TestServerFeatureMode(t *testing.T) {
	cls := testClassifier(t, 7)
	rng := rand.New(rand.NewSource(8))
	tail := &Tail{
		Body: nn.Identity{},
		Exit: models.NewExit(rng, "tail", 4, 5),
	}
	s := startServer(t, cls, tail)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	feat := tensor.Randn(rng, 1, 4, 4, 4)
	err = protocol.WriteFrame(conn, protocol.Frame{
		Type: protocol.MsgClassifyFeat, ID: 77, Payload: protocol.EncodeTensor(feat),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := protocol.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != protocol.MsgResult || f.ID != 77 {
		t.Fatalf("feature response %s id %d", f.Type, f.ID)
	}
}

func TestClientClassifyFeaturesEndToEnd(t *testing.T) {
	cls := testClassifier(t, 20)
	rng := rand.New(rand.NewSource(21))
	tail := &Tail{
		Body: nn.Identity{},
		Exit: models.NewExit(rng, "tail2", 8, 5),
	}
	s := startServer(t, cls, tail)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	feat := tensor.Randn(rng, 1, 8, 3, 3)
	pred, conf, err := client.ClassifyFeatures(feat)
	if err != nil {
		t.Fatal(err)
	}
	if pred < 0 || pred >= 5 || conf <= 0 || conf > 1 {
		t.Fatalf("implausible feature-mode result %d/%v", pred, conf)
	}
	// Reference: run the tail locally.
	batch := feat.Reshape(1, 8, 3, 3)
	want := tail.Logits(batch, false).ArgMaxRows()[0]
	if pred != want {
		t.Fatalf("feature-mode pred %d, local tail pred %d", pred, want)
	}
	// Raw and feature modes interleave on one connection.
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.ClassifyFeatures(feat); err != nil {
		t.Fatal(err)
	}
}

func TestServerFeatureModeUnsupported(t *testing.T) {
	s := startServer(t, testClassifier(t, 9), nil)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rng := rand.New(rand.NewSource(10))
	feat := tensor.Randn(rng, 1, 4, 4, 4)
	err = protocol.WriteFrame(conn, protocol.Frame{
		Type: protocol.MsgClassifyFeat, ID: 1, Payload: protocol.EncodeTensor(feat),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := protocol.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != protocol.MsgError {
		t.Fatalf("expected error frame, got %s", f.Type)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	cls := testClassifier(t, 11)
	s := startServer(t, cls, nil)
	const clients, perClient = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err != nil {
					errs <- err
					return
				}
			}
		}(int64(c))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Stats().Requests; got != clients*perClient {
		t.Fatalf("server saw %d requests, want %d", got, clients*perClient)
	}
}

func TestServerCloseIsIdempotentAndDrains(t *testing.T) {
	s := startServer(t, testClassifier(t, 12), nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err == nil {
		t.Fatal("classify succeeded against a closed server")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Fatal("nil classifier accepted")
	}
}

func TestServerStatsByteCounters(t *testing.T) {
	cls := testClassifier(t, 14)
	s := startServer(t, cls, nil)
	client, err := edge.DialCloud(s.Addr().String(), edge.DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(15))
	if _, _, err := client.Classify(tensor.Randn(rng, 1, 3, 8, 8)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("byte counters not updated: %+v", st)
	}
	if st.TotalConns != 1 {
		t.Fatalf("TotalConns = %d, want 1", st.TotalConns)
	}
}
