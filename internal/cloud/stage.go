package cloud

// Stage-server mode: a server configured with WithStage participates in a
// multi-hop partitioned deployment (core.Partition). Two chain flavours share
// the machinery:
//
//   - STATIC chains (MsgRelay, PR 9): the hop runs its configured Stage and
//     forwards the outputs downstream, or — at the terminal hop — argmaxes
//     the logits and answers with the usual MsgResultBatch (the SAME
//     post-processing as classifyBatchFrame, so chained predictions are
//     bitwise identical to the monolithic forward).
//   - SOURCE-ROUTED chains (MsgRelayRoute): every hop holds the FULL serving
//     chain and runs whatever unit span the frame's route assigns it. The
//     cuts live in the frame, not in server config, which is what lets the
//     edge's live re-placement solver move a cut mid-run: in-flight frames
//     complete on the old route while new frames ship the new one, and no
//     server is reconfigured.
//
// Downstream is an ordered FAILOVER set (PR 6 exclusion-window semantics): a
// hop that cannot reach its preferred next hop tries the alternates in order,
// so a chain heals hop-locally while the edge keeps serving. A shed from
// downstream propagates upstream as MsgShed — the zero-charge hold signal —
// never as a generic error. Every relay reply piggybacks a per-hop
// StageStatus vector (measured stage service time + the hop's own downstream
// link estimate), the telemetry the edge's re-placement solver runs on.
//
// This package deliberately depends only on the Downstream interfaces, never
// on the edge package; shed-ness of a downstream error is detected through
// errors.Is against core.ErrShed and the optional RetryAfterHint method,
// both satisfied by edge.ShedError.

import (
	"errors"
	"fmt"
	"time"

	"github.com/meanet/meanet/internal/core"
	"github.com/meanet/meanet/internal/linkest"
	"github.com/meanet/meanet/internal/nn"
	"github.com/meanet/meanet/internal/protocol"
	"github.com/meanet/meanet/internal/tensor"
)

// Downstream is the transport a non-terminal stage server forwards
// activations through. *edge.TCPClient satisfies it (RelayActivations), so a
// chain hop reuses the full edge transport stack — pipelining, redial with
// backoff, per-hop link estimation — for its own downstream leg. The server
// package deliberately depends only on this interface, never on the edge
// package.
type Downstream interface {
	RelayActivations(batch *tensor.Tensor, ttl uint8) ([]protocol.Result, error)
}

// downstreamStatus is the status-aware flavour of Downstream: the reply's
// piggybacked per-hop StageStatus vector comes back with the results.
// Optional — a transport without it still chains, with no telemetry.
type downstreamStatus interface {
	RelayActivationsStatus(batch *tensor.Tensor, ttl uint8) ([]protocol.Result, []protocol.StageStatus, error)
}

// downstreamRouted forwards a source-routed relay frame (MsgRelayRoute).
// Optional — required only on hops of a routed chain.
type downstreamRouted interface {
	RelayRouted(batch *tensor.Tensor, ttl uint8, pos int, bounds []int) ([]protocol.Result, []protocol.StageStatus, error)
}

// downstreamProbe forwards a zero-instance chain probe.
type downstreamProbe interface {
	RelayProbe(ttl uint8) ([]protocol.StageStatus, error)
}

// downstreamLink exposes the transport's live link estimate, reported in this
// hop's own StageStatus entry so the edge solver sees every inter-hop link.
type downstreamLink interface {
	LinkEstimate() linkest.Estimate
}

// retryAfterHint extracts the hold hint a shed error carries upstream
// (edge.ShedError implements it).
type retryAfterHint interface{ RetryAfterHint() time.Duration }

// StageConfig configures a server's role in a relay chain.
type StageConfig struct {
	// Stage is the chain stage this hop runs on STATIC relay frames
	// (MsgRelay; typically one of the *nn.Sequential stages core.Partition
	// returns). May be nil on a routed-only hop.
	Stage nn.Layer
	// Chain is the FULL serving chain at unit granularity
	// (core.FlattenChain), enabling source-routed relay frames
	// (MsgRelayRoute): the hop runs whatever span each frame's route assigns
	// it. May be nil on a static-only hop. At least one of Stage and Chain
	// must be set for stage mode.
	Chain []nn.Layer
	// Downstream, when non-nil, is shorthand for the first (preferred) entry
	// of Downstreams.
	Downstream Downstream
	// Downstreams is the ordered failover set this hop forwards through:
	// entries are tried in order, an entry that fails is excluded for a
	// window (sheds: the carried retry-after; transport failures:
	// FailureExclusion) and the next is tried — the PR 6 replica-exclusion
	// semantics applied hop-locally. Empty (and Downstream nil) marks the
	// terminal hop.
	Downstreams []Downstream
	// MaxInFlight bounds concurrent relay dispatches per connection
	// (default 16). Relay dispatches run concurrently — a non-terminal hop
	// BLOCKS on its downstream round trip, and handling relays inline would
	// stall the connection's read loop and collapse chain pipelining to
	// lockstep — so the bound is what turns a fast upstream into TCP
	// backpressure instead of an unbounded goroutine/tensor backlog.
	MaxInFlight int
	// FailureExclusion is how long a downstream that failed at the transport
	// level is excluded from failover selection (default 250ms — long enough
	// to stop hammering a dead peer, short enough that a restarted hop is
	// back in rotation within a blink).
	FailureExclusion time.Duration
}

func (c *StageConfig) fillDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.FailureExclusion <= 0 {
		c.FailureExclusion = 250 * time.Millisecond
	}
}

// defaultDownstreamRetry is the hold hint propagated upstream when a
// downstream shed carried none.
const defaultDownstreamRetry = 50 * time.Millisecond

// Queue-normalized stage service-time EWMA (the PR 8 svcEWMA shape).
const (
	stageServiceAlpha      = 0.3
	minStageServiceSamples = 3
)

// downstreamState is one failover entry plus its exclusion window; the slice
// of entries is fixed at config time, only the window fields mutate.
type downstreamState struct {
	d     Downstream
	until time.Time // exclusion window end; zero or past = open
	shed  bool      // current window caused only by sheds
}

// WithStage enables stage-server mode: MsgRelay frames run cfg.Stage,
// MsgRelayRoute frames run route-assigned spans of cfg.Chain, and both
// forward downstream (or terminate the chain). A server may combine a stage
// with raw/tail models and serve all frame types; a pure relay hop passes
// nil models to NewServer.
func WithStage(cfg StageConfig) Option {
	cfg.fillDefaults()
	return func(s *Server) {
		s.stage = cfg.Stage
		s.chain = cfg.Chain
		s.stageInflight = cfg.MaxInFlight
		s.failureExcl = cfg.FailureExclusion
		s.downs = nil
		if cfg.Downstream != nil {
			s.downs = append(s.downs, &downstreamState{d: cfg.Downstream})
		}
		for _, d := range cfg.Downstreams {
			if d != nil {
				s.downs = append(s.downs, &downstreamState{d: d})
			}
		}
	}
}

// stageForward runs the static stage on an NCHW activation batch in eval mode.
func (s *Server) stageForward(x *tensor.Tensor) *tensor.Tensor { return s.stage.Forward(x, false) }

// stageMode reports whether this server serves relay frames at all.
func (s *Server) stageMode() bool { return s.stage != nil || len(s.chain) > 0 }

// timedStageForward runs one relay forward pass and folds its duration into
// the service-time EWMA, normalized by how many relay dispatches shared the
// cores while it ran.
func (s *Server) timedStageForward(run func(*tensor.Tensor) *tensor.Tensor, x *tensor.Tensor, n int) (*tensor.Tensor, error) {
	active := s.relayActive.Add(1)
	start := time.Now()
	out, err := safeLogits(run, x)
	dur := time.Since(start)
	s.relayActive.Add(-1)
	if err == nil {
		s.noteStageService(dur, n, active)
	}
	return out, err
}

// noteStageService folds one measured stage forward into the EWMA piggybacked
// on relay replies. The sample is per-instance wall time divided by the relay
// dispatches in flight (the PR 8 queue-normalized shape): a contended hop
// reports its true per-instance cost, not its queueing delay, so the edge
// solver doesn't misread upstream congestion as a slow device.
func (s *Server) noteStageService(dur time.Duration, instances int, active int64) {
	if instances <= 0 || dur <= 0 {
		return
	}
	sample := dur.Seconds() / float64(instances)
	if active > 1 {
		sample /= float64(active)
	}
	s.svcMu.Lock()
	if s.svcSamples == 0 {
		s.svcEWMA = sample
	} else {
		s.svcEWMA = stageServiceAlpha*sample + (1-stageServiceAlpha)*s.svcEWMA
	}
	s.svcSamples++
	s.svcMu.Unlock()
}

// stageStatus assembles this hop's StageStatus entry for a relay reply. used
// is the downstream the frame was forwarded through (nil at the terminal
// hop); its live link estimate becomes the hop's reported downstream link.
func (s *Server) stageStatus(used Downstream) protocol.StageStatus {
	var st protocol.StageStatus
	s.svcMu.Lock()
	if s.svcSamples >= minStageServiceSamples {
		st.ServiceNanos = uint64(s.svcEWMA * 1e9)
	}
	s.svcMu.Unlock()
	if dl, ok := used.(downstreamLink); ok {
		est := dl.LinkEstimate()
		if est.Mbps > 0 {
			st.DownMbps = float32(est.Mbps)
		}
		if est.RTT > 0 {
			st.DownRTTNanos = uint64(est.RTT)
		}
	}
	return st
}

// downOrder snapshots the failover order: open entries first (config order),
// then excluded entries as a last resort — with no healthy alternate it is
// better to retry an excluded hop than to fail the frame outright.
func (s *Server) downOrder() []int {
	now := time.Now()
	s.downMu.Lock()
	defer s.downMu.Unlock()
	order := make([]int, 0, len(s.downs))
	var excluded []int
	for i, ds := range s.downs {
		if now.Before(ds.until) {
			excluded = append(excluded, i)
		} else {
			order = append(order, i)
		}
	}
	return append(order, excluded...)
}

// excludeDown opens or extends entry i's exclusion window after a failed
// attempt. Windows EXTEND, never shorten (the PR 6 invariant: overlapping
// failures only push the reopen time out), and the shed flag stays true only
// while EVERY failure inside the current window was a shed — one transport
// failure relabels the window until it lapses.
func (s *Server) excludeDown(i int, window time.Duration, shedOrigin bool) {
	now := time.Now()
	s.downMu.Lock()
	ds := s.downs[i]
	if now.Before(ds.until) {
		ds.shed = ds.shed && shedOrigin
	} else {
		ds.shed = shedOrigin
	}
	if u := now.Add(window); u.After(ds.until) {
		ds.until = u
	}
	s.downMu.Unlock()
}

// tryDownstreams runs attempt against each downstream in failover order until
// one succeeds, excluding the ones that fail. On total failure it reports
// whether EVERY attempt was refused by admission control (shed) — the caller
// must then answer MsgShed, preserving the zero-charge hold contract along
// the whole chain — plus the largest retry-after hint seen.
func (s *Server) tryDownstreams(attempt func(d Downstream) error) (used Downstream, shed bool, retryAfter time.Duration, err error) {
	allShed := true
	var firstErr error
	for _, i := range s.downOrder() {
		d := s.downs[i].d
		aerr := attempt(d)
		if aerr == nil {
			return d, false, 0, nil
		}
		isShed := errors.Is(aerr, core.ErrShed)
		window := s.failureExcl
		if isShed {
			window = defaultDownstreamRetry
			var h retryAfterHint
			if errors.As(aerr, &h) {
				if ra := h.RetryAfterHint(); ra > 0 {
					window = ra
					if ra > retryAfter {
						retryAfter = ra
					}
				}
			}
		}
		allShed = allShed && isShed
		s.excludeDown(i, window, isShed)
		if firstErr == nil {
			firstErr = aerr
		}
	}
	if retryAfter <= 0 {
		retryAfter = defaultDownstreamRetry
	}
	return nil, allShed, retryAfter, firstErr
}

// shedFrame answers a frame with a MsgShed reply carrying the hold hint and
// this hop's load snapshot.
func (s *Server) shedFrame(id uint64, retryAfter time.Duration) protocol.Frame {
	return protocol.Frame{
		Type:    protocol.MsgShed,
		ID:      id,
		Payload: protocol.EncodeShed(retryAfter, s.loadStatus()),
	}
}

// chainReply assembles the MsgResultBatch reply of a relay frame: results,
// this hop's load snapshot, and the per-hop status vector with this hop's
// entry PREPENDED to whatever the downstream reported — so the edge receives
// hop-ordered telemetry with zero extra round trips.
func (s *Server) chainReply(id uint64, results []protocol.Result, used Downstream, downHops []protocol.StageStatus) protocol.Frame {
	hops := append([]protocol.StageStatus{s.stageStatus(used)}, downHops...)
	return protocol.Frame{
		Type:    protocol.MsgResultBatch,
		ID:      id,
		Payload: protocol.EncodeResultsChain(results, s.loadStatus(), hops),
	}
}

// relayFrame serves one MsgRelay frame: a zero-instance probe traverses the
// chain without running any stage; an activation batch runs the static stage,
// then either terminates the chain or forwards downstream with failover.
// Reached only in stage mode (dispatch answers MsgError otherwise, the
// legacy-server contract).
func (s *Server) relayFrame(f protocol.Frame) protocol.Frame {
	if protocol.IsRelayProbe(f.Payload) {
		ttl, _ := protocol.DecodeRelayProbe(f.Payload)
		return s.probeFrame(f.ID, ttl)
	}
	if s.stage == nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, "static relay not supported by this hop (source-routed chain; send MsgRelayRoute)")
	}
	ttl, t, err := protocol.DecodeActivation(f.Payload)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	if t.Dims() != 4 {
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("expected NCHW activation tensor, got rank %d", t.Dims()))
	}
	if len(s.downs) > 0 && ttl == 0 {
		// The TTL guards against relay cycles (a chain misconfigured into a
		// loop would otherwise circulate frames forever): refuse to forward
		// rather than decrement below zero.
		s.errorCount.Add(1)
		return errorFrame(f.ID, "relay TTL exhausted (chain cycle or more hops than the sender allowed)")
	}
	n := t.Dim(0)
	out, err := s.timedStageForward(s.stageForward, t, n)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	if len(s.downs) == 0 {
		// Terminal hop: identical post-processing to classifyBatchFrame, so a
		// chained forward answers bitwise like the monolithic server would.
		results := make([]protocol.Result, n)
		for i := range results {
			pred, conf := argmaxRow(out.Row(i))
			results[i] = protocol.Result{Pred: int32(pred), Conf: conf}
		}
		s.instServed.Add(uint64(n))
		return s.chainReply(f.ID, results, nil, nil)
	}
	var results []protocol.Result
	var downHops []protocol.StageStatus
	used, shed, retryAfter, err := s.tryDownstreams(func(d Downstream) error {
		if ds, ok := d.(downstreamStatus); ok {
			rs, hs, aerr := ds.RelayActivationsStatus(out, ttl-1)
			if aerr != nil {
				return aerr
			}
			results, downHops = rs, hs
			return nil
		}
		rs, aerr := d.RelayActivations(out, ttl-1)
		if aerr != nil {
			return aerr
		}
		results, downHops = rs, nil
		return nil
	})
	if err != nil {
		if shed {
			// Every reachable next hop refused by admission control: the
			// refusal — not a failure — propagates upstream as MsgShed so the
			// edge takes its zero-charge hold instead of charging a retry.
			return s.shedFrame(f.ID, retryAfter)
		}
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("downstream relay: %v", err))
	}
	if len(results) != n {
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("downstream returned %d results for %d instances", len(results), n))
	}
	s.relayed.Add(uint64(n))
	return s.chainReply(f.ID, results, used, downHops)
}

// probeFrame serves a zero-instance chain probe: no stage runs; a terminal
// hop answers an empty result batch carrying its own status, a forwarding hop
// relays the probe downstream (with failover) and prepends its status — so
// one probe verifies every transport leg and returns the full per-hop
// telemetry vector.
func (s *Server) probeFrame(id uint64, ttl uint8) protocol.Frame {
	if len(s.downs) == 0 {
		return s.chainReply(id, nil, nil, nil)
	}
	if ttl == 0 {
		s.errorCount.Add(1)
		return errorFrame(id, "relay TTL exhausted (chain cycle or more hops than the sender allowed)")
	}
	var downHops []protocol.StageStatus
	used, shed, retryAfter, err := s.tryDownstreams(func(d Downstream) error {
		dp, ok := d.(downstreamProbe)
		if !ok {
			return errors.New("downstream transport does not support chain probes")
		}
		hs, aerr := dp.RelayProbe(ttl - 1)
		if aerr != nil {
			return aerr
		}
		downHops = hs
		return nil
	})
	if err != nil {
		if shed {
			return s.shedFrame(id, retryAfter)
		}
		s.errorCount.Add(1)
		return errorFrame(id, fmt.Sprintf("downstream relay: %v", err))
	}
	return s.chainReply(id, nil, used, downHops)
}

// spanForward composes a chain unit span in eval mode.
func spanForward(units []nn.Layer) func(*tensor.Tensor) *tensor.Tensor {
	return func(x *tensor.Tensor) *tensor.Tensor {
		for _, u := range units {
			x = u.Forward(x, false)
		}
		return x
	}
}

// routedFrame serves one MsgRelayRoute frame: run the unit span the route
// assigns this hop, then forward with the leading boundary consumed — or,
// when no boundaries remain, terminate the chain for THIS frame. The cuts
// travel with the frame, so two frames on the same connection may run
// different spans here: exactly what a live cut move looks like mid-drain.
func (s *Server) routedFrame(f protocol.Frame) protocol.Frame {
	ttl, pos, bounds, t, err := protocol.DecodeRoutedActivation(f.Payload)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	if t.Dims() < 2 {
		// Routed cuts may sit past the flattening layers, so rank-2
		// [batch, features] activations are as legal as NCHW here — the only
		// requirement is a batch dimension to count instances by.
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("expected batched activation tensor, got rank %d", t.Dims()))
	}
	L := len(s.chain)
	if pos >= L {
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("route position %d past serving chain of %d units", pos, L))
	}
	if len(bounds) > 0 && bounds[len(bounds)-1] >= L {
		// Catch a bad route here rather than hops later: boundaries are
		// strictly increasing, so checking the last covers them all.
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("route boundary %d past serving chain of %d units", bounds[len(bounds)-1], L))
	}
	next := L
	if len(bounds) > 0 {
		next = bounds[0]
		if ttl == 0 {
			s.errorCount.Add(1)
			return errorFrame(f.ID, "relay TTL exhausted (chain cycle or more hops than the sender allowed)")
		}
		if len(s.downs) == 0 {
			s.errorCount.Add(1)
			return errorFrame(f.ID, fmt.Sprintf("route continues past this hop (%d boundaries left) but no downstream is configured", len(bounds)))
		}
	}
	n := t.Dim(0)
	out, err := s.timedStageForward(spanForward(s.chain[pos:next]), t, n)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	if len(bounds) == 0 {
		results := make([]protocol.Result, n)
		for i := range results {
			pred, conf := argmaxRow(out.Row(i))
			results[i] = protocol.Result{Pred: int32(pred), Conf: conf}
		}
		s.instServed.Add(uint64(n))
		return s.chainReply(f.ID, results, nil, nil)
	}
	var results []protocol.Result
	var downHops []protocol.StageStatus
	used, shed, retryAfter, err := s.tryDownstreams(func(d Downstream) error {
		dr, ok := d.(downstreamRouted)
		if !ok {
			return errors.New("downstream transport does not support routed relay")
		}
		rs, hs, aerr := dr.RelayRouted(out, ttl-1, bounds[0], bounds[1:])
		if aerr != nil {
			return aerr
		}
		results, downHops = rs, hs
		return nil
	})
	if err != nil {
		if shed {
			return s.shedFrame(f.ID, retryAfter)
		}
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("downstream relay: %v", err))
	}
	if len(results) != n {
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("downstream returned %d results for %d instances", len(results), n))
	}
	s.relayed.Add(uint64(n))
	return s.chainReply(f.ID, results, used, downHops)
}
