package cloud

// Stage-server mode: a server configured with WithStage participates in a
// multi-hop partitioned deployment (core.Partition). It accepts MsgRelay
// frames carrying an NCHW activation batch, runs its stage of the chain, and
// either forwards the stage outputs to the next hop through a Downstream
// transport or — at the terminal hop — argmaxes the logits and answers with
// the usual MsgResultBatch (the SAME post-processing as classifyBatchFrame,
// so chained predictions are bitwise identical to the monolithic forward).
// Results from downstream propagate back along the chain; every hop stamps
// its own LoadStatus on the reply, so the upstream transport's per-hop link
// estimation and backpressure signals keep working unchanged.

import (
	"fmt"

	"github.com/meanet/meanet/internal/nn"
	"github.com/meanet/meanet/internal/protocol"
	"github.com/meanet/meanet/internal/tensor"
)

// Downstream is the transport a non-terminal stage server forwards
// activations through. *edge.TCPClient satisfies it (RelayActivations), so a
// chain hop reuses the full edge transport stack — pipelining, redial with
// backoff, per-hop link estimation — for its own downstream leg. The server
// package deliberately depends only on this interface, never on the edge
// package.
type Downstream interface {
	RelayActivations(batch *tensor.Tensor, ttl uint8) ([]protocol.Result, error)
}

// StageConfig configures a server's role in a relay chain.
type StageConfig struct {
	// Stage is the chain stage this hop runs (required; typically one of the
	// *nn.Sequential stages core.Partition returns).
	Stage nn.Layer
	// Downstream, when non-nil, receives this stage's output activations;
	// nil marks the terminal hop, which converts logits to results itself.
	Downstream Downstream
	// MaxInFlight bounds concurrent relay dispatches per connection
	// (default 16). Relay dispatches run concurrently — a non-terminal hop
	// BLOCKS on its downstream round trip, and handling relays inline would
	// stall the connection's read loop and collapse chain pipelining to
	// lockstep — so the bound is what turns a fast upstream into TCP
	// backpressure instead of an unbounded goroutine/tensor backlog.
	MaxInFlight int
}

func (c *StageConfig) fillDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
}

// WithStage enables stage-server mode: MsgRelay frames run cfg.Stage and
// forward downstream (or terminate the chain). A server may combine a stage
// with raw/tail models and serve all frame types; a pure relay hop passes
// nil models to NewServer.
func WithStage(cfg StageConfig) Option {
	cfg.fillDefaults()
	return func(s *Server) {
		s.stage = cfg.Stage
		s.downstream = cfg.Downstream
		s.stageInflight = cfg.MaxInFlight
	}
}

// stageForward runs the stage on an NCHW activation batch in eval mode.
func (s *Server) stageForward(x *tensor.Tensor) *tensor.Tensor { return s.stage.Forward(x, false) }

// relayFrame serves one MsgRelay frame: decode the activation batch, run the
// stage, then either answer with terminal results or forward downstream and
// relay the answers back. Reached only with a stage configured (dispatch
// answers MsgError otherwise, the legacy-server contract).
func (s *Server) relayFrame(f protocol.Frame) protocol.Frame {
	ttl, t, err := protocol.DecodeActivation(f.Payload)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	if t.Dims() != 4 {
		s.errorCount.Add(1)
		return errorFrame(f.ID, fmt.Sprintf("expected NCHW activation tensor, got rank %d", t.Dims()))
	}
	if s.downstream != nil && ttl == 0 {
		// The TTL guards against relay cycles (a chain misconfigured into a
		// loop would otherwise circulate frames forever): refuse to forward
		// rather than decrement below zero.
		s.errorCount.Add(1)
		return errorFrame(f.ID, "relay TTL exhausted (chain cycle or more hops than the sender allowed)")
	}
	out, err := safeLogits(s.stageForward, t)
	if err != nil {
		s.errorCount.Add(1)
		return errorFrame(f.ID, err.Error())
	}
	n := t.Dim(0)
	var results []protocol.Result
	if s.downstream == nil {
		// Terminal hop: identical post-processing to classifyBatchFrame, so a
		// chained forward answers bitwise like the monolithic server would.
		results = make([]protocol.Result, n)
		for i := range results {
			pred, conf := argmaxRow(out.Row(i))
			results[i] = protocol.Result{Pred: int32(pred), Conf: conf}
		}
		s.instServed.Add(uint64(n))
	} else {
		results, err = s.downstream.RelayActivations(out, ttl-1)
		if err != nil {
			// Any downstream failure — transport death, a shed, a legacy next
			// hop — surfaces to the upstream as an error frame; the chain
			// client maps it onto its instances, which fall back to the edge.
			s.errorCount.Add(1)
			return errorFrame(f.ID, fmt.Sprintf("downstream relay: %v", err))
		}
		if len(results) != n {
			s.errorCount.Add(1)
			return errorFrame(f.ID, fmt.Sprintf("downstream returned %d results for %d instances", len(results), n))
		}
		s.relayed.Add(uint64(n))
	}
	return protocol.Frame{
		Type:    protocol.MsgResultBatch,
		ID:      f.ID,
		Payload: protocol.EncodeResultsLoad(results, s.loadStatus()),
	}
}
