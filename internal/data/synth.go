package data

import (
	"fmt"
	"math"
	"math/rand"
)

// SynthConfig parameterizes the synthetic image-classification generator.
type SynthConfig struct {
	Classes   int // total number of classes
	Groups    int // number of confusable groups
	GroupSize int // classes per confusable group (Groups*GroupSize ≤ Classes)

	ImgSize  int // images are Channels × ImgSize × ImgSize
	Channels int

	TrainPerClass int
	TestPerClass  int

	ProtoComponents int     // sinusoidal components per prototype channel
	GroupSpread     float64 // distance of group members from the shared base; smaller = harder
	NoiseBase       float64 // noise floor applied to every instance
	NoiseTail       float64 // scale of the exponential noise tail (creates complex instances)
	Jitter          int     // maximum circular shift in pixels

	Seed int64
}

// Validate reports configuration errors.
func (c SynthConfig) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("data: need ≥2 classes, got %d", c.Classes)
	case c.Groups < 0 || c.GroupSize < 0:
		return fmt.Errorf("data: negative group geometry %d×%d", c.Groups, c.GroupSize)
	case c.Groups*c.GroupSize > c.Classes:
		return fmt.Errorf("data: %d×%d grouped classes exceed %d total", c.Groups, c.GroupSize, c.Classes)
	case c.ImgSize < 4:
		return fmt.Errorf("data: image size %d too small", c.ImgSize)
	case c.Channels < 1:
		return fmt.Errorf("data: need ≥1 channel, got %d", c.Channels)
	case c.TrainPerClass < 1 || c.TestPerClass < 1:
		return fmt.Errorf("data: per-class counts must be ≥1 (train %d, test %d)", c.TrainPerClass, c.TestPerClass)
	}
	return nil
}

// GroupedClasses returns the labels that belong to confusable groups, in
// label order. These are the classes the generator makes intrinsically hard.
func (c SynthConfig) GroupedClasses() []int {
	n := c.Groups * c.GroupSize
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Synth holds generated train and test splits plus the generating config.
type Synth struct {
	Config SynthConfig
	Train  *Dataset
	Test   *Dataset
}

// prototype is one class's pattern: a per-channel sum of random sinusoids,
// normalized to zero mean and unit variance per channel.
type prototype [][]float32 // [channel][H*W]

// Generate builds the synthetic dataset described by the config.
//
// Classes 0..Groups*GroupSize-1 are arranged in confusable groups: each group
// shares a base prototype and members differ only by a GroupSpread-scaled
// perturbation, so a small model mixes them up (class-wise complexity).
// The remaining classes get independent prototypes and are easy to separate.
// Every instance additionally samples its own noise level with an
// exponential tail (instance-wise complexity), plus a random circular shift
// and amplitude scaling.
func Generate(cfg SynthConfig) (*Synth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := makePrototypes(cfg, rng)

	train := NewDataset(cfg.Classes*cfg.TrainPerClass, cfg.Channels, cfg.ImgSize, cfg.ImgSize, cfg.Classes)
	test := NewDataset(cfg.Classes*cfg.TestPerClass, cfg.Channels, cfg.ImgSize, cfg.ImgSize, cfg.Classes)
	fillSplit(cfg, rng, protos, train, cfg.TrainPerClass)
	fillSplit(cfg, rng, protos, test, cfg.TestPerClass)
	return &Synth{Config: cfg, Train: train, Test: test}, nil
}

func makePrototypes(cfg SynthConfig, rng *rand.Rand) []prototype {
	comp := cfg.ProtoComponents
	if comp < 1 {
		comp = 4
	}
	newPattern := func() prototype {
		p := make(prototype, cfg.Channels)
		for ch := range p {
			p[ch] = sinusoidField(rng, cfg.ImgSize, comp)
		}
		return p
	}
	addScaled := func(base, delta prototype, s float64) prototype {
		out := make(prototype, len(base))
		for ch := range base {
			plane := make([]float32, len(base[ch]))
			for i := range plane {
				plane[i] = base[ch][i] + float32(s)*delta[ch][i]
			}
			normalize(plane)
			out[ch] = plane
		}
		return out
	}

	protos := make([]prototype, cfg.Classes)
	label := 0
	for g := 0; g < cfg.Groups; g++ {
		base := newPattern()
		for m := 0; m < cfg.GroupSize; m++ {
			protos[label] = addScaled(base, newPattern(), cfg.GroupSpread)
			label++
		}
	}
	for ; label < cfg.Classes; label++ {
		protos[label] = newPattern()
	}
	return protos
}

// sinusoidField renders a random smooth pattern of n sinusoidal components
// on an s×s grid, normalized to zero mean / unit variance.
func sinusoidField(rng *rand.Rand, s, n int) []float32 {
	plane := make([]float32, s*s)
	for c := 0; c < n; c++ {
		fx := 1 + rng.Float64()*3
		fy := 1 + rng.Float64()*3
		phase := rng.Float64() * 2 * math.Pi
		amp := 0.5 + rng.Float64()
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				v := amp * math.Sin(2*math.Pi*(fx*float64(x)+fy*float64(y))/float64(s)+phase)
				plane[y*s+x] += float32(v)
			}
		}
	}
	normalize(plane)
	return plane
}

func normalize(plane []float32) {
	var sum, sumSq float64
	for _, v := range plane {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / float64(len(plane))
	variance := sumSq/float64(len(plane)) - mean*mean
	std := math.Sqrt(variance)
	if std < 1e-8 {
		std = 1
	}
	for i := range plane {
		plane[i] = float32((float64(plane[i]) - mean) / std)
	}
}

func fillSplit(cfg SynthConfig, rng *rand.Rand, protos []prototype, ds *Dataset, perClass int) {
	s := cfg.ImgSize
	plane := s * s
	idx := 0
	for class := 0; class < cfg.Classes; class++ {
		for k := 0; k < perClass; k++ {
			// Instance-wise complexity: heavy-tailed per-instance noise.
			sigma := cfg.NoiseBase + cfg.NoiseTail*rng.ExpFloat64()
			amp := 0.8 + 0.4*rng.Float64()
			dx, dy := 0, 0
			if cfg.Jitter > 0 {
				dx = rng.Intn(2*cfg.Jitter+1) - cfg.Jitter
				dy = rng.Intn(2*cfg.Jitter+1) - cfg.Jitter
			}
			base := idx * cfg.Channels * plane
			for ch := 0; ch < cfg.Channels; ch++ {
				src := protos[class][ch]
				dst := ds.X[base+ch*plane : base+(ch+1)*plane]
				for y := 0; y < s; y++ {
					sy := mod(y+dy, s)
					for x := 0; x < s; x++ {
						sx := mod(x+dx, s)
						dst[y*s+x] = float32(amp)*src[sy*s+sx] + float32(sigma*rng.NormFloat64())
					}
				}
			}
			ds.Y[idx] = class
			idx++
		}
	}
	// Shuffle so class labels are not contiguous.
	perm := rng.Perm(ds.N)
	shuffled := ds.Subset(perm)
	copy(ds.X, shuffled.X)
	copy(ds.Y, shuffled.Y)
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}
