package data

// Scale selects how large a preset dataset is generated. Experiments use
// ScaleSmall by default; tests use ScaleTiny; ScaleFull approaches the class
// ratios of the paper's datasets (at CPU-trainable image sizes).
type Scale int

// Scales, smallest first.
const (
	ScaleTiny Scale = iota + 1
	ScaleSmall
	ScaleFull
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	default:
		return "unknown"
	}
}

// SynthC100 is the CIFAR-100 stand-in: many classes of small images, a large
// fraction of which live in confusable groups. The paper selects half of all
// classes as hard; the grouped fraction here is chosen so class-wise
// complexity is clearly bimodal at every scale.
func SynthC100(scale Scale, seed int64) SynthConfig {
	cfg := SynthConfig{
		ImgSize:         12,
		Channels:        3,
		ProtoComponents: 4,
		GroupSpread:     0.55,
		NoiseBase:       0.35,
		NoiseTail:       0.45,
		Jitter:          1,
		Seed:            seed,
	}
	switch scale {
	case ScaleTiny:
		cfg.Classes, cfg.Groups, cfg.GroupSize = 8, 1, 4
		cfg.TrainPerClass, cfg.TestPerClass = 30, 12
	case ScaleFull:
		cfg.Classes, cfg.Groups, cfg.GroupSize = 40, 5, 4
		cfg.TrainPerClass, cfg.TestPerClass = 120, 40
		cfg.ImgSize = 16
	default: // ScaleSmall
		cfg.Classes, cfg.Groups, cfg.GroupSize = 20, 3, 4
		cfg.TrainPerClass, cfg.TestPerClass = 80, 30
	}
	return cfg
}

// SynthImageNet is the ImageNet stand-in: fewer classes of larger images
// with a heavier complex-instance tail (the paper's ImageNet runs send more
// traffic to the cloud than the CIFAR runs).
func SynthImageNet(scale Scale, seed int64) SynthConfig {
	cfg := SynthConfig{
		ImgSize:         20,
		Channels:        3,
		ProtoComponents: 5,
		GroupSpread:     0.5,
		NoiseBase:       0.4,
		NoiseTail:       0.55,
		Jitter:          2,
		Seed:            seed,
	}
	switch scale {
	case ScaleTiny:
		cfg.Classes, cfg.Groups, cfg.GroupSize = 6, 1, 3
		cfg.TrainPerClass, cfg.TestPerClass = 24, 10
		cfg.ImgSize = 16
	case ScaleFull:
		cfg.Classes, cfg.Groups, cfg.GroupSize = 16, 3, 4
		cfg.TrainPerClass, cfg.TestPerClass = 150, 50
		cfg.ImgSize = 24
	default: // ScaleSmall
		cfg.Classes, cfg.Groups, cfg.GroupSize = 10, 2, 3
		cfg.TrainPerClass, cfg.TestPerClass = 90, 35
	}
	return cfg
}
