// Package data provides the dataset substrate for the MEANet reproduction.
//
// CIFAR-100 and ImageNet are unavailable in this offline environment, so the
// package generates synthetic image-classification datasets whose two
// difficulty axes are first-class and tunable:
//
//   - class-wise complexity: groups of classes share a perturbed base
//     prototype and are therefore mutually confusable (the paper's "hard
//     classes" emerge from exactly this kind of structure);
//   - instance-wise complexity: every instance carries its own noise level
//     drawn from a heavy-tailed distribution, so a fraction of instances is
//     genuinely ambiguous (the paper's "complex" instances, which only a
//     larger model can resolve).
//
// See DESIGN.md §2 for the substitution rationale.
package data

import (
	"fmt"
	"math/rand"

	"github.com/meanet/meanet/internal/tensor"
)

// Dataset is an in-memory labelled image set in NCHW layout.
type Dataset struct {
	X          []float32 // length N*C*H*W
	Y          []int     // length N
	N, C, H, W int
	NumClasses int
}

// NewDataset allocates an empty dataset with capacity for n images.
func NewDataset(n, c, h, w, numClasses int) *Dataset {
	return &Dataset{
		X:          make([]float32, n*c*h*w),
		Y:          make([]int, n),
		N:          n,
		C:          c,
		H:          h,
		W:          w,
		NumClasses: numClasses,
	}
}

// ImageSize reports the per-image element count C*H*W.
func (d *Dataset) ImageSize() int { return d.C * d.H * d.W }

// Len reports the number of examples (satisfying batch-iteration interfaces).
func (d *Dataset) Len() int { return d.N }

// Image returns a view of image i as a [C,H,W] tensor sharing storage.
func (d *Dataset) Image(i int) *tensor.Tensor {
	sz := d.ImageSize()
	return tensor.FromSlice(d.X[i*sz:(i+1)*sz], d.C, d.H, d.W)
}

// Batch gathers the given indices into an NCHW tensor and a label slice.
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	sz := d.ImageSize()
	x := tensor.New(len(indices), d.C, d.H, d.W)
	y := make([]int, len(indices))
	for bi, i := range indices {
		copy(x.Data()[bi*sz:(bi+1)*sz], d.X[i*sz:(i+1)*sz])
		y[bi] = d.Y[i]
	}
	return x, y
}

// Subset copies the selected indices into a new dataset.
func (d *Dataset) Subset(indices []int) *Dataset {
	out := NewDataset(len(indices), d.C, d.H, d.W, d.NumClasses)
	sz := d.ImageSize()
	for bi, i := range indices {
		copy(out.X[bi*sz:(bi+1)*sz], d.X[i*sz:(i+1)*sz])
		out.Y[bi] = d.Y[i]
	}
	return out
}

// Split partitions the dataset into two disjoint random subsets, the first
// containing ceil(frac*N) examples. It is used to carve a validation set
// from the training set (the paper holds out 10%).
func (d *Dataset) Split(frac float64, rng *rand.Rand) (*Dataset, *Dataset) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("data: split fraction %v out of [0,1]", frac))
	}
	perm := rng.Perm(d.N)
	k := int(float64(d.N)*frac + 0.999999)
	if k > d.N {
		k = d.N
	}
	return d.Subset(perm[:k]), d.Subset(perm[k:])
}

// FilterClasses returns the subset whose labels are in keep, with labels
// remapped through remap (old label → new label). Labels absent from remap
// panic, because that indicates an inconsistent class dictionary.
func (d *Dataset) FilterClasses(keep map[int]bool, remap map[int]int, newNumClasses int) *Dataset {
	var idx []int
	for i, y := range d.Y {
		if keep[y] {
			idx = append(idx, i)
		}
	}
	out := d.Subset(idx)
	out.NumClasses = newNumClasses
	for i, y := range out.Y {
		ny, ok := remap[y]
		if !ok {
			panic(fmt.Sprintf("data: label %d selected but missing from remap", y))
		}
		out.Y[i] = ny
	}
	return out
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Loader iterates a dataset in shuffled mini-batches.
type Loader struct {
	ds    *Dataset
	batch int
	rng   *rand.Rand
	perm  []int
	pos   int
}

// NewLoader builds a loader with the given batch size. The RNG drives
// shuffling; pass a seeded source for reproducible epochs.
func NewLoader(ds *Dataset, batch int, rng *rand.Rand) *Loader {
	if batch < 1 {
		panic(fmt.Sprintf("data: batch size %d < 1", batch))
	}
	l := &Loader{ds: ds, batch: batch, rng: rng}
	l.Reset()
	return l
}

// Reset reshuffles and rewinds the loader.
func (l *Loader) Reset() {
	l.perm = l.rng.Perm(l.ds.N)
	l.pos = 0
}

// Next returns the next mini-batch, or ok=false at epoch end.
func (l *Loader) Next() (x *tensor.Tensor, y []int, ok bool) {
	if l.pos >= len(l.perm) {
		return nil, nil, false
	}
	end := l.pos + l.batch
	if end > len(l.perm) {
		end = len(l.perm)
	}
	x, y = l.ds.Batch(l.perm[l.pos:end])
	l.pos = end
	return x, y, true
}

// Batches reports the number of batches per epoch.
func (l *Loader) Batches() int { return (l.ds.N + l.batch - 1) / l.batch }
