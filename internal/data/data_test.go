package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func tinyConfig(seed int64) SynthConfig {
	return SynthConfig{
		Classes: 6, Groups: 1, GroupSize: 3,
		ImgSize: 8, Channels: 2,
		TrainPerClass: 20, TestPerClass: 10,
		GroupSpread: 0.5, NoiseBase: 0.3, NoiseTail: 0.3, Jitter: 1,
		Seed: seed,
	}
}

func TestGenerateShapesAndBalance(t *testing.T) {
	s, err := Generate(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Train.N != 120 || s.Test.N != 60 {
		t.Fatalf("split sizes %d/%d, want 120/60", s.Train.N, s.Test.N)
	}
	for _, cnt := range s.Train.ClassCounts() {
		if cnt != 20 {
			t.Fatalf("train class counts %v, want 20 each", s.Train.ClassCounts())
		}
	}
	for _, cnt := range s.Test.ClassCounts() {
		if cnt != 10 {
			t.Fatalf("test class counts %v, want 10 each", s.Test.ClassCounts())
		}
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	a, err := Generate(tinyConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tinyConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train.X {
		if a.Train.X[i] != b.Train.X[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c, err := Generate(tinyConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Train.X {
		if a.Train.X[i] != c.Train.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*SynthConfig)
	}{
		{"too few classes", func(c *SynthConfig) { c.Classes = 1 }},
		{"groups exceed classes", func(c *SynthConfig) { c.Groups, c.GroupSize = 4, 2 }},
		{"image too small", func(c *SynthConfig) { c.ImgSize = 2 }},
		{"no channels", func(c *SynthConfig) { c.Channels = 0 }},
		{"no train data", func(c *SynthConfig) { c.TrainPerClass = 0 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig(1)
			tc.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// nearestPrototypeConfusion classifies test images by nearest class centroid
// (computed on train) and returns per-class accuracy. It is a cheap stand-in
// for a trained model, enough to probe the complexity structure.
func nearestPrototypeConfusion(t *testing.T, s *Synth) []float64 {
	t.Helper()
	k := s.Config.Classes
	sz := s.Train.ImageSize()
	centroids := make([][]float64, k)
	counts := make([]int, k)
	for i := range centroids {
		centroids[i] = make([]float64, sz)
	}
	for i := 0; i < s.Train.N; i++ {
		y := s.Train.Y[i]
		counts[y]++
		for j, v := range s.Train.X[i*sz : (i+1)*sz] {
			centroids[y][j] += float64(v)
		}
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	correct := make([]float64, k)
	total := make([]float64, k)
	for i := 0; i < s.Test.N; i++ {
		img := s.Test.X[i*sz : (i+1)*sz]
		best, bestD := -1, math.Inf(1)
		for c := 0; c < k; c++ {
			var d float64
			for j, v := range img {
				diff := float64(v) - centroids[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		y := s.Test.Y[i]
		total[y]++
		if best == y {
			correct[y]++
		}
	}
	acc := make([]float64, k)
	for c := range acc {
		acc[c] = correct[c] / total[c]
	}
	return acc
}

// TestGroupedClassesAreHarder is the load-bearing property of the generator:
// confusable-group classes must have lower accuracy than independent ones,
// otherwise the paper's hard-class selection has nothing to find.
func TestGroupedClassesAreHarder(t *testing.T) {
	cfg := tinyConfig(7)
	cfg.TrainPerClass, cfg.TestPerClass = 60, 40
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := nearestPrototypeConfusion(t, s)
	grouped := map[int]bool{}
	for _, c := range cfg.GroupedClasses() {
		grouped[c] = true
	}
	var hardSum, easySum float64
	var hardN, easyN int
	for c, a := range acc {
		if grouped[c] {
			hardSum += a
			hardN++
		} else {
			easySum += a
			easyN++
		}
	}
	hardAcc, easyAcc := hardSum/float64(hardN), easySum/float64(easyN)
	if hardAcc >= easyAcc-0.05 {
		t.Fatalf("grouped classes not harder: grouped %.3f vs independent %.3f", hardAcc, easyAcc)
	}
}

func TestSubsetAndFilterClasses(t *testing.T) {
	s, err := Generate(tinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	keep := map[int]bool{1: true, 4: true}
	remap := map[int]int{1: 0, 4: 1}
	f := s.Train.FilterClasses(keep, remap, 2)
	if f.NumClasses != 2 {
		t.Fatalf("NumClasses = %d, want 2", f.NumClasses)
	}
	if f.N != 40 {
		t.Fatalf("filtered N = %d, want 40", f.N)
	}
	for _, y := range f.Y {
		if y != 0 && y != 1 {
			t.Fatalf("unremapped label %d", y)
		}
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		s, err := Generate(tinyConfig(seed))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		a, b := s.Train.Split(0.1, rng)
		return a.N+b.N == s.Train.N && a.N == 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLoaderCoversEpochExactlyOnce(t *testing.T) {
	s, err := Generate(tinyConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	l := NewLoader(s.Train, 32, rng)
	seen := 0
	batches := 0
	for {
		x, y, ok := l.Next()
		if !ok {
			break
		}
		if x.Dim(0) != len(y) {
			t.Fatalf("batch tensor %d rows vs %d labels", x.Dim(0), len(y))
		}
		seen += len(y)
		batches++
	}
	if seen != s.Train.N {
		t.Fatalf("epoch covered %d of %d examples", seen, s.Train.N)
	}
	if batches != l.Batches() {
		t.Fatalf("saw %d batches, Batches() = %d", batches, l.Batches())
	}
	// After Reset the loader runs again.
	l.Reset()
	if _, _, ok := l.Next(); !ok {
		t.Fatal("loader dead after Reset")
	}
}

func TestBatchGathersCorrectImages(t *testing.T) {
	s, err := Generate(tinyConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	x, y := s.Train.Batch([]int{3, 0})
	sz := s.Train.ImageSize()
	for j := 0; j < sz; j++ {
		if x.Data()[j] != s.Train.X[3*sz+j] {
			t.Fatal("batch row 0 does not match image 3")
		}
	}
	if y[0] != s.Train.Y[3] || y[1] != s.Train.Y[0] {
		t.Fatal("batch labels wrong")
	}
}

func TestPresetsValidAtAllScales(t *testing.T) {
	for _, scale := range []Scale{ScaleTiny, ScaleSmall, ScaleFull} {
		for name, cfg := range map[string]SynthConfig{
			"c100":     SynthC100(scale, 1),
			"imagenet": SynthImageNet(scale, 1),
		} {
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%s preset invalid at scale %v: %v", name, scale, err)
			}
		}
	}
}

func TestInstanceNoiseVaries(t *testing.T) {
	cfg := tinyConfig(9)
	cfg.NoiseTail = 0.8
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rough per-image "noisiness" proxy: high-frequency energy via neighbour
	// differences. The tail must create a spread of difficulty.
	sz := s.Train.ImageSize()
	var lo, hi float64
	lo = math.Inf(1)
	for i := 0; i < s.Train.N; i++ {
		img := s.Train.X[i*sz : (i+1)*sz]
		var e float64
		for j := 1; j < len(img); j++ {
			d := float64(img[j] - img[j-1])
			e += d * d
		}
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	if hi < 2*lo {
		t.Fatalf("instance difficulty spread too flat: lo %.2f hi %.2f", lo, hi)
	}
}
