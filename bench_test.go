package meanet_test

// Benchmark harness: one testing.B benchmark per paper table and figure
// (regenerating the experiment at tiny scale and reporting its headline
// numbers as custom metrics), plus micro-benchmarks of the hot kernels.
//
//	go test -bench=. -benchmem
//
// Training of the shared systems happens once per process (cached in the
// experiment context); each benchmark iteration re-runs the measurement
// phase of its experiment.

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/meanet/meanet/internal/cloud"
	"github.com/meanet/meanet/internal/core"
	"github.com/meanet/meanet/internal/data"
	"github.com/meanet/meanet/internal/edge"
	"github.com/meanet/meanet/internal/energy"
	"github.com/meanet/meanet/internal/experiments"
	"github.com/meanet/meanet/internal/models"
	"github.com/meanet/meanet/internal/netsim"
	"github.com/meanet/meanet/internal/netsim/fleet"
	"github.com/meanet/meanet/internal/nn"
	"github.com/meanet/meanet/internal/profile"
	"github.com/meanet/meanet/internal/protocol"
	"github.com/meanet/meanet/internal/tensor"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

// benchContext lazily builds the shared tiny-scale experiment context.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.Config{Scale: data.ScaleTiny, Seed: 1})
	})
	return benchCtx
}

func BenchmarkFig2ConfusionMatrix(b *testing.B) {
	ctx := benchContext(b)
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.Confusion.Accuracy()
	}
	b.ReportMetric(100*acc, "main-acc-%")
}

func BenchmarkFig3ComplexityCategories(b *testing.B) {
	ctx := benchContext(b)
	var complexShare float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(ctx)
		if err != nil {
			b.Fatal(err)
		}
		complexShare = float64(r.ComplexN) / float64(r.EasyN+r.HardN+r.ComplexN)
	}
	b.ReportMetric(100*complexShare, "complex-%")
}

func BenchmarkFig5ErrorTypes(b *testing.B) {
	ctx := benchContext(b)
	var typeIV float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(ctx)
		if err != nil {
			b.Fatal(err)
		}
		typeIV = r.CIFAR.HardAsHard
	}
	b.ReportMetric(100*typeIV, "hard-as-hard-%")
}

func BenchmarkFig6TrainingMemory(b *testing.B) {
	ctx := benchContext(b)
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(ctx)
		if err != nil {
			b.Fatal(err)
		}
		saving = 1 - r.Rows[0].OursMiB/r.Rows[0].JointMiB
	}
	b.ReportMetric(100*saving, "r32a-mem-saving-%")
}

func BenchmarkFig7ThresholdSweep(b *testing.B) {
	ctx := benchContext(b)
	var bestAcc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		bestAcc = r.Series[0].Points[0].Accuracy // threshold 0 = all-cloud
	}
	b.ReportMetric(100*bestAcc, "allcloud-acc-%")
}

func BenchmarkFig8EnergySweep(b *testing.B) {
	ctx := benchContext(b)
	var edgeOnlyJ float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(ctx)
		if err != nil {
			b.Fatal(err)
		}
		edgeOnlyJ = r.CIFAR[0].TotalJ()
	}
	b.ReportMetric(edgeOnlyJ, "cifar-edgeonly-J")
}

func BenchmarkTableICostModel(b *testing.B) {
	ctx := benchContext(b)
	var edgeCloudJ float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableI(ctx)
		if err != nil {
			b.Fatal(err)
		}
		edgeCloudJ = r.Rows[2].ComputeJ + r.Rows[2].CommJ
	}
	b.ReportMetric(edgeCloudJ, "edgecloud-raw-J")
}

func BenchmarkTableIIHardAccuracy(b *testing.B) {
	ctx := benchContext(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableII(ctx)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.Rows[0].TestMEA - r.Rows[0].TestMain
	}
	b.ReportMetric(100*gain, "hard-test-gain-pts")
}

func BenchmarkTableIIIOverallAccuracy(b *testing.B) {
	ctx := benchContext(b)
	var det float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIII(ctx)
		if err != nil {
			b.Fatal(err)
		}
		det = r.Rows[0].Detection
	}
	b.ReportMetric(100*det, "detection-%")
}

func BenchmarkTableIVDetection(b *testing.B) {
	ctx := benchContext(b)
	var hardMinusRandom float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIV(ctx)
		if err != nil {
			b.Fatal(err)
		}
		hardMinusRandom = r.Rows[0].Detection - r.Rows[1].Detection
	}
	b.ReportMetric(100*hardMinusRandom, "hard-vs-random-pts")
}

func BenchmarkTableVClassSelection(b *testing.B) {
	ctx := benchContext(b)
	var halfHardGain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableV(ctx)
		if err != nil {
			b.Fatal(err)
		}
		halfHardGain = r.Rows[0].TrainMEA - r.Rows[0].TrainMain
	}
	b.ReportMetric(100*halfHardGain, "half-hard-train-gain-pts")
}

func BenchmarkTableVIProfile(b *testing.B) {
	ctx := benchContext(b)
	var r32aTrained float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableVI(ctx)
		if err != nil {
			b.Fatal(err)
		}
		r32aTrained = r.Rows[0].TrainedMParam
	}
	b.ReportMetric(r32aTrained, "r32a-trained-Mparams")
}

func BenchmarkTableVIIPerImageCost(b *testing.B) {
	ctx := benchContext(b)
	var cifarEcpMilliJ float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableVII(ctx)
		if err != nil {
			b.Fatal(err)
		}
		cifarEcpMilliJ = 1000 * r.Rows[0].ComputeEnergyJ
	}
	b.ReportMetric(cifarEcpMilliJ, "cifar-Ecp-mJ")
}

func BenchmarkAblationCombine(b *testing.B) {
	ctx := benchContext(b)
	var sumVsMainOnly float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCombine(ctx)
		if err != nil {
			b.Fatal(err)
		}
		sumVsMainOnly = r.Rows[0].TrainHard - r.Rows[2].TrainHard
	}
	b.ReportMetric(100*sumVsMainOnly, "adaptive-train-gain-pts")
}

func BenchmarkAblationOptimization(b *testing.B) {
	ctx := benchContext(b)
	var memRatio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationOptimization(ctx)
		if err != nil {
			b.Fatal(err)
		}
		memRatio = r.Rows[0].MemoryMiB / r.Rows[1].MemoryMiB
	}
	b.ReportMetric(memRatio, "blockwise/joint-mem")
}

// --- Micro-benchmarks of the hot paths ---

func benchmarkMatMul(b *testing.B, size int) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, size, size)
	y := tensor.Randn(rng, 1, size, size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
	b.SetBytes(int64(size * size * 4))
	flops := 2 * float64(size) * float64(size) * float64(size)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkMatMul128(b *testing.B) { benchmarkMatMul(b, 128) }

func BenchmarkMatMul512(b *testing.B) { benchmarkMatMul(b, 512) }

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	conv := nn.NewConv2D(rng, "b", 16, 32, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 8, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkConv2DTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	conv := nn.NewConv2D(rng, "b", 8, 16, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 8, 8, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := conv.Forward(x, true)
		nn.ZeroGrads(conv.Params())
		conv.Backward(out)
	}
}

func BenchmarkMEANetInferBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	backbone, err := models.BuildResNet(rng, models.ResNetEdgeC100(1))
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.BuildMEANetA(rng, backbone, 2, 20)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 16, 3, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Infer(x, core.Policy{UseCloud: false}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "images/s")
}

// BenchmarkCloudOffload compares serial (one round trip per complex
// instance, the pre-batching Infer loop) against batched (one round trip
// per batch, the serving default) offload of 16 cloud-qualifying instances
// through both transports. The offload is measured in isolation — the edge
// MainForward is identical either way and would only dilute the gap.
func BenchmarkCloudOffload(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	cloudBackbone, err := models.BuildResNet(rng, models.ResNetSpec{
		Name: "offcloud", InChannels: 3, StemChannels: 8,
		Channels: []int{8, 16}, Blocks: []int{1, 1}, Strides: []int{1, 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	cloudModel := models.NewClassifier(rng, cloudBackbone, 8)
	const n = 16
	x := tensor.Randn(rng, 1, n, 3, 12, 12)

	run := func(b *testing.B, offload core.CloudBatchFunc) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			_, _, errs, err := offload(x)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range errs {
				if e != nil {
					b.Fatal(e)
				}
			}
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "images/s")
	}

	inproc := &edge.InProcClient{Model: cloudModel}
	b.Run("inproc/serial", func(b *testing.B) {
		run(b, core.SerialOffload(func(img *tensor.Tensor) (int, float64, error) { return inproc.Classify(img) }))
	})
	b.Run("inproc/batched", func(b *testing.B) {
		run(b, edge.BatchOffload(inproc))
	})

	srv, err := cloud.NewServer(cloudModel, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := edge.DialCloud(srv.Addr().String(), edge.DialConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.Run("tcp/serial", func(b *testing.B) {
		run(b, core.SerialOffload(func(img *tensor.Tensor) (int, float64, error) { return client.Classify(img) }))
	})
	b.Run("tcp/batched", func(b *testing.B) {
		run(b, edge.BatchOffload(client))
	})

	// The WAN pair is where aggregation pays: with per-message uplink
	// latency (the paper's WiFi setting), serial offload buys one round trip
	// per complex instance, batched offload exactly one per batch.
	wan, err := edge.DialCloud(srv.Addr().String(), edge.DialConfig{
		Link: netsim.Link{Latency: 2 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer wan.Close()
	b.Run("wan/serial", func(b *testing.B) {
		run(b, core.SerialOffload(func(img *tensor.Tensor) (int, float64, error) { return wan.Classify(img) }))
	})
	b.Run("wan/batched", func(b *testing.B) {
		run(b, edge.BatchOffload(wan))
	})
}

// BenchmarkCloudOffloadModes measures the adaptive feature-vs-raw offload on
// the 2ms WAN transport: the same batch of cloud-qualifying instances is
// offloaded raw, as main-block features, and in auto mode (which resolves to
// the cheaper features representation here). Features are 3× smaller on the
// wire for this geometry, so the feature modes trade bytes for identical
// predictions. Reported per op: images/s and actual upload bytes.
func BenchmarkCloudOffloadModes(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	backbone, err := models.BuildResNet(rng, models.ResNetSpec{
		Name: "offmodes", InChannels: 3, StemChannels: 4,
		Channels: []int{4, 8}, Blocks: []int{1, 1}, Strides: []int{2, 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.BuildMEANetA(rng, backbone, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	tail := &cloud.Tail{Body: nn.Identity{}, Exit: models.NewExit(rng, "offmodes-tail", m.MainOutChannels(), 8)}
	srv, err := cloud.NewServer(cloud.Partitioned(m.Main, tail), tail)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	const n = 16
	x := tensor.Randn(rng, 1, n, 3, 16, 16)
	cost := &edge.CostParams{
		Compute:      energy.EdgeGPUCIFAR(),
		WiFi:         energy.DefaultWiFi(),
		ImageBytes:   4 * 3 * 16 * 16,
		FeatureBytes: 4 * int64(m.MainOutChannels()) * 8 * 8,
	}
	for _, mode := range []edge.OffloadMode{edge.OffloadRaw, edge.OffloadFeatures, edge.OffloadAuto} {
		b.Run("wan/"+mode.String(), func(b *testing.B) {
			client, err := edge.DialCloud(srv.Addr().String(), edge.DialConfig{
				Link: netsim.Link{Latency: 2 * time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			rt, err := edge.NewRuntime(m, core.Policy{Threshold: 0, UseCloud: true}, client, cost)
			if err != nil {
				b.Fatal(err)
			}
			if err := rt.SetOffloadMode(mode); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Classify(x); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "images/s")
			b.ReportMetric(float64(client.BytesSent())/float64(b.N), "upload-B/op")
		})
	}
}

// BenchmarkAdaptiveOffload measures the closed-loop adaptation on a real TCP
// transport whose shaped link alternates between a fast and a degraded state
// mid-run (netsim.ShapeVar): the runtime, in auto mode with a latency
// budget, is expected to ride the changes by flipping the upload
// representation, with the live estimator fed by the client's own round
// trips. Reported per op: images/s, actual upload bytes, and cumulative
// representation flips.
func BenchmarkAdaptiveOffload(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	backbone, err := models.BuildResNet(rng, models.ResNetSpec{
		Name: "adaptbench", InChannels: 3, StemChannels: 4,
		Channels: []int{4, 8}, Blocks: []int{1, 1}, Strides: []int{2, 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.BuildMEANetA(rng, backbone, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	tail := &cloud.Tail{Body: nn.Identity{}, Exit: models.NewExit(rng, "adapttail", m.MainOutChannels(), 8)}
	srv, err := cloud.NewServer(cloud.Partitioned(m.Main, tail), tail)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	// The good link's send phase must exceed linkest's MinSendDur (1ms) or
	// the estimator (correctly) refuses to rate it.
	good := netsim.Link{Latency: time.Millisecond, Mbps: 500}
	degraded := netsim.Link{Latency: 2 * time.Millisecond, Mbps: 2}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	shaper := netsim.ShapeVar(conn, good)
	client := edge.NewClientOnConn(shaper, edge.DialConfig{})
	defer client.Close()

	const n = 16
	x := tensor.Randn(rng, 1, n, 3, 16, 16)
	cost := &edge.CostParams{
		Compute:      energy.EdgeGPUCIFAR(),
		WiFi:         energy.DefaultWiFi(),
		ImageBytes:   4 * 3 * 16 * 16,
		FeatureBytes: 4 * int64(m.MainOutChannels()) * 8 * 8,
	}
	rt, err := edge.NewRuntime(m, core.Policy{Threshold: 0, UseCloud: true}, client, cost)
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.SetOffloadMode(edge.OffloadAuto); err != nil {
		b.Fatal(err)
	}
	// Budget between raw's PER-INSTANCE upload latency on the two links
	// (the unit the runtime's live decision compares): raw affordable on
	// the fast link only.
	rt.SetLatencyBudget((good.TransferTime(cost.ImageBytes) + degraded.TransferTime(cost.ImageBytes)) / 2)

	// Mature the estimator on the fast link before measuring.
	for i := 0; i < 10; i++ {
		if _, err := rt.Classify(x); err != nil {
			b.Fatal(err)
		}
	}
	warmupBytes := client.BytesSent() // rebaseline: warm-up uploads are not ops
	// Phases of 8 ops per link state — long enough for the EWMA (α=0.25)
	// to converge onto each state before the next switch.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 8 {
			shaper.SetLink(degraded)
		} else if i%16 == 0 {
			shaper.SetLink(good)
		}
		if _, err := rt.Classify(x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rep := rt.Report()
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "images/s")
	b.ReportMetric(float64(client.BytesSent()-warmupBytes)/float64(b.N), "upload-B/op")
	b.ReportMetric(float64(rep.RepFlips), "rep-flips")
}

// BenchmarkFleetOffload measures the multi-edge fleet scenario: N concurrent
// edge runtimes against one slow serialized-accelerator cloud server, with
// and without admission control (cloud.ShedPolicy). Each op is one whole
// fleet run (dial, classify, close). Reported per op: aggregate images/s and
// sheds/op — the shedding sub-benchmark trades shed instances (served at the
// edge instead) for strictly less time queued behind the saturated server.
func BenchmarkFleetOffload(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	backbone, err := models.BuildResNet(rng, models.ResNetSpec{
		Name: "fleetbench", InChannels: 3, StemChannels: 4,
		Channels: []int{4, 8}, Blocks: []int{1, 1}, Strides: []int{2, 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.BuildMEANetA(rng, backbone, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	cloudBackbone, err := models.BuildResNet(rng, models.ResNetSpec{
		Name: "fleetbenchcloud", InChannels: 3, StemChannels: 8,
		Channels: []int{8, 16}, Blocks: []int{1, 1}, Strides: []int{1, 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	cloudModel := models.NewClassifier(rng, cloudBackbone, 8)

	const edges, batches, batchSize = 4, 3, 16
	x := tensor.Randn(rng, 1, batchSize, 3, 16, 16)
	cost := &edge.CostParams{
		Compute:    energy.EdgeGPUCIFAR(),
		WiFi:       energy.DefaultWiFi(),
		ImageBytes: 4 * 3 * 16 * 16,
	}
	run := func(b *testing.B, opts ...cloud.Option) {
		b.Helper()
		srv, err := cloud.NewServer(&fleet.SlowModel{Inner: cloudModel, Delay: 2 * time.Millisecond}, nil, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := fleet.Run(fleet.Config{
				Addr:    srv.Addr().String(),
				Edges:   edges,
				Batches: batches,
				Net:     m,
				Policy:  core.Policy{Threshold: 0, UseCloud: true, CloudRetries: 1},
				Cost:    cost,
				Input:   x,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Instances != edges*batches*batchSize {
				b.Fatalf("fleet classified %d instances, fed %d", res.Instances, edges*batches*batchSize)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(edges*batches*batchSize*b.N)/b.Elapsed().Seconds(), "images/s")
		b.ReportMetric(float64(srv.Stats().Sheds)/float64(b.N), "sheds/op")
	}
	b.Run("park-all", func(b *testing.B) { run(b) })
	b.Run("shedding", func(b *testing.B) {
		run(b, cloud.WithShedding(cloud.ShedPolicy{MaxInFlight: 2, RetryAfter: 10 * time.Millisecond}))
	})
}

// flatLogits is the zero-cpu cloud stand-in used by BenchmarkFleetWeighted:
// constant logits, so a replica's whole serving cost is its modeled delay.
type flatLogits struct{ classes int }

func (m flatLogits) Logits(x *tensor.Tensor, train bool) *tensor.Tensor {
	return tensor.New(x.Dim(0), m.classes)
}

// BenchmarkFleetWeighted measures heterogeneous-fleet routing over
// co-located replicas: concurrent workers share one edge.MultiClient across
// 2 fast + 1 slow (6×) serialized accelerators, with uniform p2c vs the
// learned service-time weighting. In-process replicas expose no link RTT or
// load signal, so the weight is the only thing separating the straggler.
// Each op is one whole run — fresh replicas and a fresh router, so the
// weighted rows re-learn the straggler from scratch every time. Reported:
// aggregate images/s and the straggler's share of answered round trips.
func BenchmarkFleetWeighted(b *testing.B) {
	const workers, batchSize, batches = 4, 8, 6
	const fastDelay, slowDelay = 2 * time.Millisecond, 12 * time.Millisecond
	imgs := make([]*tensor.Tensor, batchSize)
	for i := range imgs {
		imgs[i] = tensor.New(3, 8, 8)
	}
	run := func(b *testing.B, uniform bool) {
		b.Helper()
		var slowCalls, totalCalls uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clients := make([]edge.CloudClient, 3)
			for r, d := range []time.Duration{fastDelay, fastDelay, slowDelay} {
				clients[r] = &edge.InProcClient{
					Model: &fleet.SlowModel{Inner: flatLogits{classes: 10}, Delay: d},
				}
			}
			mc, err := edge.NewMultiClient(clients,
				[]string{"inproc://fast-0", "inproc://fast-1", "inproc://slow"},
				edge.MultiConfig{Seed: int64(i + 1), DisableServiceWeight: uniform})
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			var firstErr atomic.Value
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < batches; j++ {
						if _, _, err := mc.ClassifyBatch(imgs); err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if err, ok := firstErr.Load().(error); ok {
				b.Fatal(err)
			}
			for _, st := range mc.ReplicaStats() {
				totalCalls += st.Offloads
				if st.Addr == "inproc://slow" {
					slowCalls += st.Offloads
				}
			}
			mc.Close()
		}
		b.StopTimer()
		b.ReportMetric(float64(workers*batches*batchSize*b.N)/b.Elapsed().Seconds(), "images/s")
		if totalCalls > 0 {
			b.ReportMetric(100*float64(slowCalls)/float64(totalCalls), "slow-share-%")
		}
	}
	b.Run("uniform", func(b *testing.B) { run(b, true) })
	b.Run("weighted", func(b *testing.B) { run(b, false) })
}

// BenchmarkPipelinePartition measures the multi-hop relay path end to end:
// a serving chain cut by the placement solver into a 3-hop pipeline (edge
// stage → two TCP stage servers behind shaped links) against the direct
// edge→cloud raw offload of the whole chain. Stages are zero-cpu shape
// stands with serialized solver-derived delays, so the images/s gap between
// the subs is the pipelining headroom the solver predicted, not host noise.
// Each op drives one fixed open-loop load through a persistent chain.
func BenchmarkPipelinePartition(b *testing.B) {
	const chainCompute = 4 * time.Millisecond
	const workers, total, classes = 8, 32, 5
	rng := rand.New(rand.NewSource(71))
	backbone, err := models.BuildResNet(rng, models.ResNetSpec{
		Name: "benchchain", InChannels: 3, StemChannels: 4,
		Channels: []int{4, 8}, Blocks: []int{1, 1}, Strides: []int{1, 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	cls := models.NewClassifier(rng, backbone, classes)
	chain := core.FlattenChain(cls.Backbone, cls.Exit)
	in := profile.Shape{C: 3, H: 12, W: 12}
	probe, err := profile.LocalPlacement(chain, in, profile.Device{Name: "probe", MACsPerSec: 1})
	if err != nil {
		b.Fatal(err)
	}
	rate := float64(probe.Stages[0].Cost.MACs) / chainCompute.Seconds()
	devices := []profile.Device{
		{Name: "edge", MACsPerSec: rate},
		{Name: "hop1", MACsPerSec: rate},
		{Name: "hop2", MACsPerSec: rate},
	}
	uplink := netsim.Link{Latency: time.Millisecond, Mbps: 20}
	interlink := netsim.Link{Latency: 500 * time.Microsecond, Mbps: 200}
	pipe, err := profile.PlacePipeline(chain, in, devices, []netsim.Link{uplink, interlink})
	if err != nil {
		b.Fatal(err)
	}
	img := tensor.Randn(rng, 1, in.C, in.H, in.W)
	stageDelay := func(i int) time.Duration {
		return time.Duration(pipe.Stages[i].ComputeSec * float64(time.Second))
	}

	measure := func(b *testing.B, hops []fleet.ChainHop, local *fleet.SlowStage) {
		b.Helper()
		ch, err := fleet.StartChain(hops)
		if err != nil {
			b.Fatal(err)
		}
		defer ch.Close()
		next, err := edge.DialCloud(ch.Addr(), edge.DialConfig{Link: uplink})
		if err != nil {
			b.Fatal(err)
		}
		var localStage nn.Layer
		if local != nil { // a typed-nil *SlowStage would read as a present stage
			localStage = local
		}
		client, err := edge.NewChainClient(localStage, next, 0)
		if err != nil {
			next.Close()
			b.Fatal(err)
		}
		defer client.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fleet.RunChainLoad(client, img, workers, total); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "images/s")
	}

	b.Run("direct", func(b *testing.B) {
		measure(b, []fleet.ChainHop{{
			Stage: &fleet.SlowStage{Inner: fleet.ShapeStage{Dims: []int{classes}}, Delay: chainCompute},
		}}, nil)
	})
	b.Run("pipeline3", func(b *testing.B) {
		mid := pipe.Stages[1].Out
		measure(b, []fleet.ChainHop{
			{Stage: &fleet.SlowStage{Inner: fleet.ShapeStage{Dims: []int{mid.C, mid.H, mid.W}}, Delay: stageDelay(1)}, Link: interlink},
			{Stage: &fleet.SlowStage{Inner: fleet.ShapeStage{Dims: []int{classes}}, Delay: stageDelay(2)}},
		}, &fleet.SlowStage{Inner: fleet.ShapeStage{Dims: []int{pipe.Stages[0].Out.C, pipe.Stages[0].Out.H, pipe.Stages[0].Out.W}}, Delay: stageDelay(0)})
	})
}

// benchFlatModel is the zero-cpu monolithic-replica stand-in for the
// failover benchmark: zero logits after a serialized fixed delay, so the
// direct fallback's serving cost is exactly the modeled whole-chain compute
// (the same physics discipline as SlowStage hops).
type benchFlatModel struct {
	classes int
	delay   time.Duration
	mu      sync.Mutex
}

func (m *benchFlatModel) Logits(x *tensor.Tensor, train bool) *tensor.Tensor {
	m.mu.Lock()
	defer m.mu.Unlock()
	time.Sleep(m.delay)
	return tensor.New(x.Dim(0), m.classes)
}

// BenchmarkChainFailover measures the chain's degraded mode next to its
// healthy path: the same 2-hop stage pipeline (zero-cpu shape stands with
// serialized delays) with a direct monolithic fallback replica armed. The
// healthy sub never touches the fallback; the failover sub kills the
// terminal hop before the load, so every batch pays a failed relay attempt
// and then the direct round trip — the images/s gap is the price of
// degraded mode, and the sub regressing is what bench-compare gates on.
func BenchmarkChainFailover(b *testing.B) {
	const hopCompute = 2 * time.Millisecond
	const workers, total, classes = 8, 32, 5
	rng := rand.New(rand.NewSource(73))
	img := tensor.Randn(rng, 1, 3, 12, 12)
	uplink := netsim.Link{Latency: time.Millisecond, Mbps: 20}
	interlink := netsim.Link{Latency: 500 * time.Microsecond, Mbps: 200}

	measure := func(b *testing.B, killTerminal bool) {
		b.Helper()
		ch, err := fleet.StartChain([]fleet.ChainHop{
			{Stage: &fleet.SlowStage{Inner: fleet.ShapeStage{Dims: []int{4, 6, 6}}, Delay: hopCompute}, Link: interlink},
			{Stage: &fleet.SlowStage{Inner: fleet.ShapeStage{Dims: []int{classes}}, Delay: hopCompute}},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer ch.Close()
		// The fallback replica serves the WHOLE chain's compute per batch —
		// a failover is never cheaper than the pipeline it replaces.
		direct, err := cloud.NewServer(&benchFlatModel{classes: classes, delay: 2 * hopCompute}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := direct.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer direct.Close()
		next, err := edge.DialCloud(ch.Addr(), edge.DialConfig{Link: uplink})
		if err != nil {
			b.Fatal(err)
		}
		client, err := edge.NewChainClient(nil, next, 0)
		if err != nil {
			next.Close()
			b.Fatal(err)
		}
		defer client.Close()
		dc, err := edge.DialCloud(direct.Addr().String(), edge.DialConfig{Link: uplink})
		if err != nil {
			b.Fatal(err)
		}
		defer dc.Close()
		client.SetDirect(dc)
		if killTerminal {
			ch.Servers[1].Close()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fleet.RunChainLoad(client, img, workers, total); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "images/s")
		st := client.ChainStats()
		if killTerminal && st.FallbackInstances == 0 {
			b.Fatal("terminal hop dead but no batch took the direct fallback")
		}
		if !killTerminal && st.FallbackInstances != 0 {
			b.Fatalf("healthy chain used the fallback for %d instances", st.FallbackInstances)
		}
	}

	b.Run("healthy", func(b *testing.B) { measure(b, false) })
	b.Run("failover", func(b *testing.B) { measure(b, true) })
}

func BenchmarkProtocolTensorRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 1, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := protocol.EncodeTensor(x)
		if _, err := protocol.DecodeTensor(enc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(3 * 32 * 32 * 4))
}

func BenchmarkSyntheticGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := data.SynthC100(data.ScaleTiny, int64(i+1))
		if _, err := data.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkStr string

func BenchmarkRenderTables(b *testing.B) {
	ctx := benchContext(b)
	r, err := experiments.TableVI(ctx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkStr = fmt.Sprint(r)
	}
}
