module github.com/meanet/meanet

go 1.22
