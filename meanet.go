// Package meanet is the public API of the MEANet reproduction — the
// edge-cloud distributed AI system of "Complexity-aware Adaptive Training
// and Inference for Edge-Cloud Distributed AI Systems" (ICDCS 2021).
//
// The package re-exports the user-facing types of the internal packages and
// provides a high-level pipeline that runs the paper's Algorithm 1 end to
// end. The building blocks:
//
//   - Dataset / SynthConfig — synthetic image-classification data with
//     controllable class-wise and instance-wise complexity;
//   - Backbone / MEANet — ResNet- or MobileNetV2-style networks restructured
//     into main, extension and adaptive blocks (Fig 4);
//   - TrainDistributed — cloud-side main-block pretraining, FDR-based
//     hard-class selection and blockwise edge adaptation (Algorithm 1);
//   - Policy / Infer / Runtime — complexity-aware inference with entropy-
//     gated cloud offload (Algorithm 2), over in-process or real TCP
//     transports (CloudServer / DialCloud);
//   - CostModel / WiFiModel — the paper's Table I/VII energy algebra.
//
// See examples/ for runnable walk-throughs and DESIGN.md for the system
// inventory.
package meanet

import (
	"fmt"
	"math/rand"

	"github.com/meanet/meanet/internal/cloud"
	"github.com/meanet/meanet/internal/core"
	"github.com/meanet/meanet/internal/data"
	"github.com/meanet/meanet/internal/edge"
	"github.com/meanet/meanet/internal/energy"
	"github.com/meanet/meanet/internal/linkest"
	"github.com/meanet/meanet/internal/metrics"
	"github.com/meanet/meanet/internal/models"
	"github.com/meanet/meanet/internal/netsim"
	"github.com/meanet/meanet/internal/profile"
	"github.com/meanet/meanet/internal/protocol"
	"github.com/meanet/meanet/internal/tensor"
)

// Tensor and dataset substrate.
type (
	// Tensor is a dense float32 NCHW tensor.
	Tensor = tensor.Tensor
	// Dataset is an in-memory labelled image set.
	Dataset = data.Dataset
	// SynthConfig parameterizes the synthetic dataset generator.
	SynthConfig = data.SynthConfig
	// Synth bundles generated train/test splits.
	Synth = data.Synth
	// Scale selects preset dataset sizes.
	Scale = data.Scale
)

// Dataset scales.
const (
	ScaleTiny  = data.ScaleTiny
	ScaleSmall = data.ScaleSmall
	ScaleFull  = data.ScaleFull
)

// Model zoo.
type (
	// Backbone is a stage-structured CNN feature extractor.
	Backbone = models.Backbone
	// ResNetSpec describes a ResNet-style backbone.
	ResNetSpec = models.ResNetSpec
	// MobileNetSpec describes a MobileNetV2-style backbone.
	MobileNetSpec = models.MobileNetSpec
	// Classifier is a backbone plus exit (e.g. the cloud AI).
	Classifier = models.Classifier
)

// Core MEANet types.
type (
	// MEANet is the tripartite edge network (main/extension/adaptive).
	MEANet = core.MEANet
	// CombineMode selects how adaptive features join main features.
	CombineMode = core.CombineMode
	// ClassDict maps hard classes to the dense extension-exit label space.
	ClassDict = core.ClassDict
	// TrainConfig controls a training run.
	TrainConfig = core.TrainConfig
	// Policy configures Algorithm 2 inference.
	Policy = core.Policy
	// Decision is the per-instance outcome of Algorithm 2.
	Decision = core.Decision
	// ExitPoint says where an instance's inference terminated.
	ExitPoint = core.ExitPoint
	// CloudFunc classifies one instance on the cloud.
	CloudFunc = core.CloudFunc
	// CloudBatchFunc classifies a stacked batch on the cloud in one round
	// trip, with per-instance error granularity.
	CloudBatchFunc = core.CloudBatchFunc
	// OffloadRep is the resolved upload representation of a batched offload.
	OffloadRep = core.OffloadRep
	// EvalReport scores an inference run.
	EvalReport = core.EvalReport
	// HardnessDetector is the optional learned easy/hard detector (§III-B).
	HardnessDetector = core.HardnessDetector
	// Confusion is a confusion matrix with precision/FDR accessors.
	Confusion = metrics.Confusion
	// EntropyStats summarizes prediction entropies (threshold selection).
	EntropyStats = metrics.EntropyStats
)

// Combination modes and exit points.
const (
	CombineSum      = core.CombineSum
	CombineConcat   = core.CombineConcat
	CombineMainOnly = core.CombineMainOnly

	ExitMain      = core.ExitMain
	ExitExtension = core.ExitExtension
	ExitCloud     = core.ExitCloud

	RepRaw      = core.RepRaw
	RepFeatures = core.RepFeatures

	OffloadRaw      = edge.OffloadRaw
	OffloadFeatures = edge.OffloadFeatures
	OffloadAuto     = edge.OffloadAuto
)

// Distributed system types.
type (
	// CloudServer serves classification requests over TCP.
	CloudServer = cloud.Server
	// CloudClient is the edge-side cloud transport.
	CloudClient = edge.CloudClient
	// FeatureCloudClient is a transport that also carries the §III-C
	// "sending features" mode.
	FeatureCloudClient = edge.FeatureCloudClient
	// CloudTail is the cloud half of a partitioned network (features mode).
	CloudTail = cloud.Tail
	// OffloadMode selects the upload representation (raw/features/auto).
	OffloadMode = edge.OffloadMode
	// TCPClient talks to a CloudServer over TCP.
	TCPClient = edge.TCPClient
	// InProcClient serves cloud requests in-process (simulation).
	InProcClient = edge.InProcClient
	// DialConfig configures the TCP client.
	DialConfig = edge.DialConfig
	// Runtime executes Algorithm 2 with accounting.
	Runtime = edge.Runtime
	// RuntimeReport summarizes a runtime's activity.
	RuntimeReport = edge.Report
	// CostParams parameterizes runtime energy accounting.
	CostParams = edge.CostParams
	// Link models a network path (latency + bandwidth).
	Link = netsim.Link
	// LinkEstimate is a live uplink snapshot (RTT, throughput, samples)
	// measured by the TCP client's link estimator.
	LinkEstimate = linkest.Estimate
	// AdaptConfig tunes the closed-loop adaptation (latency-budget
	// threshold control and live auto-mode representation choice).
	AdaptConfig = edge.AdaptConfig
	// CloudLoadStatus is the server backpressure signal piggybacked on
	// result frames.
	CloudLoadStatus = protocol.LoadStatus
	// ShedPolicy bounds the load a CloudServer accepts before answering
	// classify requests with shed frames (admission control).
	ShedPolicy = cloud.ShedPolicy
	// ShedError is the typed error a shed offload surfaces as on the edge
	// (match with errors.Is(err, ErrShed)).
	ShedError = edge.ShedError
)

// Cost model types.
type (
	// WiFiModel is the paper's upload power model.
	WiFiModel = energy.WiFiModel
	// ComputeModel converts MACs to edge latency and energy.
	ComputeModel = energy.ComputeModel
	// CostModel instantiates the Table I algebra.
	CostModel = energy.CostModel
	// EnergyBreakdown splits energy into compute and communication.
	EnergyBreakdown = energy.Breakdown
	// ModelProfile decomposes a MEANet into fixed/trained cost (Table VI).
	ModelProfile = profile.MEANetProfile
	// ProfileShape is a CHW input geometry.
	ProfileShape = profile.Shape
)

// Re-exported constructors (thin aliases so downstream code never needs the
// internal import paths).
var (
	// Generate builds a synthetic dataset.
	Generate = data.Generate
	// SynthC100 is the CIFAR-100-like preset.
	SynthC100 = data.SynthC100
	// SynthImageNet is the ImageNet-like preset.
	SynthImageNet = data.SynthImageNet

	// BuildResNet constructs a ResNet backbone.
	BuildResNet = models.BuildResNet
	// BuildMobileNet constructs a MobileNetV2-style backbone.
	BuildMobileNet = models.BuildMobileNet
	// NewClassifier attaches an exit to a backbone.
	NewClassifier = models.NewClassifier

	// BuildMEANetA restructures a backbone per Fig 4A.
	BuildMEANetA = core.BuildMEANetA
	// BuildMEANetB wraps a complete backbone per Fig 4B.
	BuildMEANetB = core.BuildMEANetB

	// DefaultTrainConfig mirrors the paper's recipe.
	DefaultTrainConfig = core.DefaultTrainConfig
	// TrainMainBlock pretrains the main block (Algorithm 1 step 1).
	TrainMainBlock = core.TrainMainBlock
	// TrainClassifier trains a complete CNN (e.g. the cloud AI).
	TrainClassifier = core.TrainClassifier
	// TrainEdgeBlocks adapts the edge blocks on hard data (steps 5-8).
	TrainEdgeBlocks = core.TrainEdgeBlocks
	// TrainEdgeBlocksWithReplay continually adapts on new environment data
	// mixed with replayed samples (§III-A).
	TrainEdgeBlocksWithReplay = core.TrainEdgeBlocksWithReplay
	// NewHardnessDetector / TrainDetector implement the optional binary
	// easy/hard detector.
	NewHardnessDetector = core.NewHardnessDetector
	TrainDetector       = core.TrainDetector
	// SelectHardClasses ranks classes by validation precision (step 2).
	SelectHardClasses = core.SelectHardClasses
	// EvaluateMain evaluates the main path on a dataset.
	EvaluateMain = core.EvaluateMain
	// Evaluate runs and scores Algorithm 2 over a dataset.
	Evaluate = core.Evaluate
	// EstimateThresholdRange returns (µ_correct, µ_wrong) from validation.
	EstimateThresholdRange = core.EstimateThresholdRange

	// NewCloudServer builds a TCP classification server.
	NewCloudServer = cloud.NewServer
	// WithShedding enables admission control on a CloudServer.
	WithShedding = cloud.WithShedding
	// ErrShed is the sentinel for offloads refused by cloud admission
	// control (the edge falls back without burning retries).
	ErrShed = edge.ErrShed
	// DialCloud connects to a cloud server.
	DialCloud = edge.DialCloud
	// NewRuntime builds an edge inference runtime.
	NewRuntime = edge.NewRuntime
	// SerialOffload adapts a per-instance CloudFunc into a CloudBatchFunc
	// (one round trip per instance — the legacy pattern).
	SerialOffload = core.SerialOffload
	// BatchOffload adapts a CloudClient's batch call into a CloudBatchFunc
	// (one round trip per batch — the serving default).
	BatchOffload = edge.BatchOffload
	// FeatureBatchOffload is BatchOffload for the features representation.
	FeatureBatchOffload = edge.FeatureBatchOffload
	// ParseOffloadMode parses raw|features|auto.
	ParseOffloadMode = edge.ParseOffloadMode
	// Partitioned composes an edge main block with a features tail into a
	// raw cloud model (bitwise-identical answers for both representations).
	Partitioned = cloud.Partitioned

	// DefaultWiFi returns the paper's WiFi constants.
	DefaultWiFi = energy.DefaultWiFi
	// ProfileMEANet computes the fixed/trained cost decomposition.
	ProfileMEANet = profile.ProfileMEANet
	// SaveWeights / LoadWeights persist raw layer weights.
	SaveWeights = models.SaveWeights
	LoadWeights = models.LoadWeights
	// SaveState / LoadState persist a complete deployable MEANet (weights,
	// batch-norm statistics and the hard-class dictionary).
	SaveState = core.SaveState
	LoadState = core.LoadState
)

// DistributedTrainingResult reports what Algorithm 1 produced.
type DistributedTrainingResult struct {
	HardClasses  []int        // selected hard classes (original labels)
	ThresholdLo  float64      // µ_correct on the validation split
	ThresholdHi  float64      // µ_wrong on the validation split
	ThresholdOK  bool         // whether the range is usable
	ValConfusion *Confusion   // main-block validation confusion matrix
	ValEntropy   EntropyStats // validation entropy statistics
}

// TrainDistributed runs Algorithm 1 end to end on a MEANet: it pretrains the
// main block on the full training set ("at the cloud"), carves a validation
// split to rank class-wise complexity, selects nHard hard classes, and
// adapts the extension and adaptive blocks on hard-class data with the main
// block frozen ("at the edge"). valFraction is the held-out share used for
// class ranking (the paper uses 0.1).
func TrainDistributed(m *MEANet, train *Dataset, nHard int, valFraction float64,
	mainCfg, edgeCfg TrainConfig) (*DistributedTrainingResult, error) {
	if valFraction <= 0 || valFraction >= 1 {
		return nil, fmt.Errorf("meanet: validation fraction %v outside (0,1)", valFraction)
	}
	rng := rand.New(rand.NewSource(mainCfg.Seed))
	val, fit := train.Split(valFraction, rng)
	if err := core.TrainMainBlock(m, fit, mainCfg); err != nil {
		return nil, fmt.Errorf("meanet: main-block pretraining: %w", err)
	}
	cm, es, err := core.EvaluateMain(m, val, 64)
	if err != nil {
		return nil, fmt.Errorf("meanet: validation: %w", err)
	}
	dict, err := core.SelectHardClasses(cm, nHard)
	if err != nil {
		return nil, fmt.Errorf("meanet: hard-class selection: %w", err)
	}
	m.Dict = dict
	if err := core.TrainEdgeBlocks(m, fit, edgeCfg); err != nil {
		return nil, fmt.Errorf("meanet: edge adaptation: %w", err)
	}
	lo, hi, ok := es.ThresholdRange()
	return &DistributedTrainingResult{
		HardClasses:  append([]int(nil), dict.FromHard...),
		ThresholdLo:  lo,
		ThresholdHi:  hi,
		ThresholdOK:  ok,
		ValConfusion: cm,
		ValEntropy:   es,
	}, nil
}
